package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"net/http"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"prorp"
	"prorp/internal/faults"
	"prorp/internal/repl"
	"prorp/internal/wal"
)

// Replication wiring of the serving runtime: the primary's stream and
// snapshot endpoints, the replica's apply/resync/persist hooks, the
// repl-state file, and the write gate. The protocol itself (cursors,
// epochs, the follower loop) lives in internal/repl; everything here is
// the server gluing that protocol onto its WAL, fleet, and wake timers.

// errNotPrimary refuses a mutation on a node that cannot acknowledge it:
// a replica, or a primary fenced by a newer epoch. Mapped to HTTP 503 —
// the request is fine, this node just isn't the place to send it.
var errNotPrimary = errors.New("not the primary: this node does not accept writes")

// rejectNonPrimary 503s a write on a non-primary, with Retry-After so
// well-behaved clients back off while the load balancer re-routes to the
// primary. Returns true when the request was rejected.
func (s *Server) rejectNonPrimary(w http.ResponseWriter) bool {
	if s.node.CanAcceptWrites() {
		return false
	}
	s.repl.writesRejected.Add(1)
	w.Header().Set("Retry-After", "1")
	writeErr(w, errNotPrimary)
	return true
}

// replCounters are the stream-side counters, surfaced on /metrics.
type replCounters struct {
	writesRejected  atomic.Uint64 // mutations 503'd on a non-primary
	streamBatches   atomic.Uint64 // 200 stream responses served (primary)
	streamRecords   atomic.Uint64 // records shipped (primary)
	snapshotsServed atomic.Uint64 // resync snapshots served (primary)
	streamLag       atomic.Int64  // records behind at the last stream poll
	applied         atomic.Uint64 // streamed records applied (replica)
	applySkipped    atomic.Uint64 // streamed records already applied (replica)
}

// Node exposes the replication state machine, for host wiring and tests.
func (s *Server) Node() *repl.Node { return s.node }

// ReplicationLag reports how far behind the primary this node is: records
// not yet applied, and the age in seconds of the newest applied record.
// A primary reports zero on both.
func (s *Server) ReplicationLag() (records int64, seconds float64) {
	if s.follower == nil {
		return 0, 0
	}
	return s.follower.LagRecords(), s.follower.LagSeconds(s.now())
}

// ----- repl-state file ----------------------------------------------------

// The repl-state file persists the node's epoch, fencing, and stream
// cursor next to the journal, one line: "PRR1 <epoch> <fenced> <cursor>".
// Epoch and fencing changes are fsynced (a fence that evaporates in a
// crash is split brain); cursor-only progress is best-effort, since a
// stale cursor merely re-streams idempotent records.
const replStateFile = "repl-state"

func replStatePath(walDir string) string {
	if walDir == "" {
		return ""
	}
	return filepath.Join(walDir, replStateFile)
}

// loadReplState reads the persisted node state. A missing file is a fresh
// node; a malformed one refuses the boot — guessing at fencing state is
// how split brain happens.
func loadReplState(fsys faults.FS, path string) (epoch uint64, fenced bool, c wal.Cursor, err error) {
	if path == "" {
		return 0, false, wal.Cursor{}, nil
	}
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return 0, false, wal.Cursor{}, nil
		}
		return 0, false, wal.Cursor{}, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, false, wal.Cursor{}, err
	}
	var fencedInt int
	var curStr string
	if _, err := fmt.Sscanf(string(data), "PRR1 %d %d %s", &epoch, &fencedInt, &curStr); err != nil {
		return 0, false, wal.Cursor{}, fmt.Errorf("malformed repl state %q: %v", data, err)
	}
	if c, err = wal.ParseCursor(curStr); err != nil {
		return 0, false, wal.Cursor{}, fmt.Errorf("malformed repl state cursor: %w", err)
	}
	return epoch, fencedInt != 0, c, nil
}

// persistReplState atomically rewrites the repl-state file; doSync forces
// an fsync before the rename. Doubles as the follower's Persist hook.
func (s *Server) persistReplState(epoch uint64, c wal.Cursor, doSync bool) error {
	path := replStatePath(s.cfg.WALDir)
	if path == "" {
		return nil
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	fenced := 0
	if s.node.Fenced() {
		fenced = 1
	}
	line := fmt.Sprintf("PRR1 %d %d %s\n", epoch, fenced, c)
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := s.cfg.FS.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write([]byte(line))
	if err == nil && doSync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = s.cfg.FS.Rename(tmp, path)
	}
	if err != nil {
		s.cfg.FS.Remove(tmp)
		return err
	}
	s.replCursor = c
	return nil
}

// loadCursor is the node's current stream position: the live follower's
// cursor on a replica, the last persisted one elsewhere.
func (s *Server) loadCursor() wal.Cursor {
	if s.follower != nil {
		return s.follower.Cursor()
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.replCursor
}

// ----- replica hooks ------------------------------------------------------

// replDoer is the HTTP client for the replication control and data plane.
func (s *Server) replDoer() faults.Doer {
	if s.cfg.ReplDoer != nil {
		return s.cfg.ReplDoer
	}
	return defaultReplClient
}

var defaultReplClient = &http.Client{Timeout: 30 * time.Second}

// applyStreamed is the follower's Apply hook: journalize-before-apply,
// exactly like a live handler, under the shared side of walGate. An error
// holds the cursor so the record is re-streamed; everything in the stream
// is idempotent under re-apply, so the duplicate journal entry a retry
// leaves behind is skipped at replay like any boundary double-apply.
func (s *Server) applyStreamed(rec wal.Record) error {
	s.walGate.RLock()
	defer s.walGate.RUnlock()
	if err := s.journalize(rec.Type, int(rec.ID), time.Unix(rec.Unix, 0)); err != nil {
		return err
	}
	skipped, err := s.applyRecord(rec)
	switch {
	case err != nil:
		return err
	case skipped:
		s.repl.applySkipped.Add(1)
	default:
		s.repl.applied.Add(1)
	}
	return nil
}

// maxSnapshotFetch caps a resync download; a fleet archive is a few
// hundred bytes per database, so 1 GiB is far past any real fleet.
const maxSnapshotFetch = 1 << 30

// replResync is the follower's Resync hook, called when the primary
// reports the cursor unusable (compacted away, or ahead of its lineage):
// fetch the primary's snapshot, swap the local fleet to it, persist the
// adopted state locally, and return the snapshot's journal boundary as
// the cursor to stream from.
func (s *Server) replResync(primaryEpoch uint64) (wal.Cursor, error) {
	if s.store == nil {
		// Without a local snapshot a crash after the swap would replay the
		// pre-resync journal against a post-resync cursor and diverge.
		return wal.Cursor{}, errors.New("snapshot resync requires SnapshotPath on the replica")
	}
	req, err := http.NewRequest(http.MethodGet, s.cfg.PrimaryAddr+"/v1/repl/snapshot", nil)
	if err != nil {
		return wal.Cursor{}, err
	}
	req.Header.Set(repl.HeaderEpoch, strconv.FormatUint(s.node.Epoch(), 10))
	resp, err := s.replDoer().Do(req)
	if err != nil {
		return wal.Cursor{}, fmt.Errorf("fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return wal.Cursor{}, fmt.Errorf("snapshot fetch: primary said %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotFetch))
	if err != nil {
		return wal.Cursor{}, fmt.Errorf("reading snapshot: %w", err)
	}
	// The container checksum is the transport integrity check: a snapshot
	// bit-flipped or cut in flight fails here and the resync is retried.
	payload, boundary, err := verifyContainer(data)
	if err != nil {
		return wal.Cursor{}, fmt.Errorf("verifying snapshot: %w", err)
	}
	if boundary == 0 {
		return wal.Cursor{}, errors.New("snapshot carries no journal boundary: primary has no WAL to stream")
	}
	fleet, pending, err := prorp.RestoreShardedFleet(s.cfg.Options, s.cfg.Shards, bytes.NewReader(payload))
	if err != nil {
		return wal.Cursor{}, fmt.Errorf("decoding snapshot: %w", err)
	}
	s.swapFleet(fleet, pending)
	// Make the adoption locally durable before the cursor moves: the local
	// snapshot re-serializes the adopted state and compacts the local
	// journal below it, so a crash right now reboots into the new lineage.
	if _, err := s.writeSnapshot(); err != nil {
		return wal.Cursor{}, fmt.Errorf("persisting resynced state: %w", err)
	}
	cur := wal.Cursor{Seg: boundary, Off: wal.SegmentDataStart}
	s.logf("repl resync: adopted primary snapshot (%d databases, primary epoch %d), streaming from %s",
		fleet.Size(), primaryEpoch, cur)
	return cur, nil
}

// swapFleet replaces the serving runtime after a snapshot resync: swap
// the pointer, re-point the fleet gauges at the new runtime, rebuild the
// wake timers from the snapshot's pending set, and close the old fleet.
// A read racing the swap may see the old fleet report closed; resync is
// already an exceptional event and the 503 is momentary.
func (s *Server) swapFleet(fleet *prorp.ShardedFleet, pending []prorp.PendingWake) {
	old := s.fleetP.Swap(fleet)
	fleet.InstrumentObs(s.reg) // GaugeFunc re-registration re-points the closures
	s.wakes.reset()
	for _, w := range pending {
		s.wakes.schedule(w.ID, w.WakeAt)
	}
	if old != nil {
		old.Close()
	}
}

// ----- primary endpoints --------------------------------------------------

const (
	defaultStreamBatch = 256 << 10
	maxStreamBatch     = 4 << 20
)

// observePeerEpoch folds a peer's epoch header into the node. This is how
// fencing propagates: the first stream poll a new-epoch follower sends to
// the old primary demotes it, durably, before the response goes out.
func (s *Server) observePeerEpoch(r *http.Request) {
	e, err := strconv.ParseUint(r.Header.Get(repl.HeaderEpoch), 10, 64)
	if err != nil || e == 0 {
		return
	}
	if s.node.ObserveEpoch(e) {
		if perr := s.persistReplState(s.node.Epoch(), s.loadCursor(), true); perr != nil {
			s.logf("persisting observed epoch %d: %v", e, perr)
		}
		if s.node.Fenced() {
			s.logf("fenced: observed epoch %d from a peer; this node no longer accepts writes", e)
		}
	}
}

// handleReplStream serves one batch of WAL frames after a cursor. Only
// records durable per the fsync policy are shipped — the stream can never
// run ahead of what a crash would preserve — and the poisoned tail is
// excluded for the same reason appends past it are refused.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	s.observePeerEpoch(r)
	w.Header().Set(repl.HeaderEpoch, strconv.FormatUint(s.node.Epoch(), 10))
	if s.node.Role() != repl.RolePrimary || s.wal == nil {
		// Replicas don't relay. A fenced primary, though, still serves the
		// stream: its acknowledged tail is exactly what a catching-up
		// follower of the new epoch needs to drain.
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	cur, err := wal.ParseCursor(r.URL.Query().Get("after"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	maxBytes := defaultStreamBatch
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("bad max %q", v)})
			return
		}
		maxBytes = min(n, maxStreamBatch)
	}
	data, start, next, err := s.wal.ReadAfter(cur, maxBytes)
	switch {
	case errors.Is(err, wal.ErrCursorCompacted):
		w.WriteHeader(http.StatusGone) // cursor below retained history: resync
		return
	case errors.Is(err, wal.ErrCursorAhead):
		w.WriteHeader(http.StatusRequestedRangeNotSatisfiable) // foreign lineage: resync
		return
	case err != nil:
		s.logf("repl stream at %s: %v", cur, err)
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	lag := s.wal.TailGapRecords(next)
	s.repl.streamLag.Store(lag)
	if len(data) == 0 {
		w.WriteHeader(http.StatusNoContent) // caught up
		return
	}
	s.repl.streamBatches.Add(1)
	s.repl.streamRecords.Add(uint64(int64(len(data)) / wal.FrameSize))
	w.Header().Set(repl.HeaderCursor, start.String())
	w.Header().Set(repl.HeaderNextCursor, next.String())
	w.Header().Set(repl.HeaderLagRecords, strconv.FormatInt(lag, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// handleReplSnapshot serves a PRS2 container of the current fleet state
// for follower resync. The journal rotates first, exactly like a
// persisted snapshot, so the recorded boundary provably covers every
// event in the archive.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	s.observePeerEpoch(r)
	w.Header().Set(repl.HeaderEpoch, strconv.FormatUint(s.node.Epoch(), 10))
	if s.node.Role() != repl.RolePrimary || s.wal == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	var payload bytes.Buffer
	payload.Write(make([]byte, storeHeader2Size)) // container header headroom
	s.walGate.Lock()
	boundary, err := s.wal.Rotate()
	if err == nil {
		_, err = s.Fleet().WriteTo(&payload)
	}
	s.walGate.Unlock()
	if err != nil {
		s.logf("repl snapshot: %v", err)
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	frame := frameContainer(payload.Bytes(), boundary)
	s.repl.snapshotsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.Write(frame)
}

// handleReplPromote makes this node the primary of a new epoch. On an
// unfenced primary it is a no-op reporting the current epoch; on a
// replica or fenced ex-primary it stops the pull loop, bumps the epoch
// durably, and starts acknowledging writes. The old primary fences itself
// the moment the new epoch reaches it over the stream (or via
// POST /v1/repl/fence). Writes acknowledged by the old primary but not
// yet replicated are lost — replication is asynchronous; the lag gauges
// bound that window.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	if s.node.CanAcceptWrites() {
		writeJSON(w, http.StatusOK, map[string]any{
			"role": s.node.Role().String(), "epoch": s.node.Epoch(), "promoted": false,
		})
		return
	}
	if s.follower != nil {
		s.follower.Stop() // drain the in-flight batch, then no more pulls
	}
	cur := s.loadCursor()
	epoch := s.node.Promote()
	if err := s.persistReplState(epoch, cur, true); err != nil {
		// Promoted in memory but not on disk: a crash now boots back into
		// the old role. Surface it loudly instead of acking.
		s.logf("promotion to epoch %d not durable: %v", epoch, err)
		writeJSON(w, http.StatusInternalServerError,
			errorJSON{Error: fmt.Sprintf("promoted to epoch %d, but persisting failed: %v", epoch, err)})
		return
	}
	s.wakes.kick() // the wake loop may start arming timers now
	s.logf("promoted: primary of epoch %d (stream cursor was %s)", epoch, cur)
	writeJSON(w, http.StatusOK, map[string]any{
		"role": s.node.Role().String(), "epoch": epoch, "promoted": true,
	})
}

// handleReplFence force-feeds the node an epoch, fencing a primary
// without waiting for a follower of the new epoch to reach it. Operators
// call it on the old primary right after promoting a replica.
func (s *Server) handleReplFence(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Epoch uint64 `json:"epoch"`
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<10)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad fence body: " + err.Error()})
		return
	}
	if req.Epoch == 0 {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "fence epoch must be positive"})
		return
	}
	if s.node.ObserveEpoch(req.Epoch) {
		if err := s.persistReplState(s.node.Epoch(), s.loadCursor(), true); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorJSON{Error: "fence not durable: " + err.Error()})
			return
		}
		s.logf("fenced at epoch %d by operator", req.Epoch)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"role": s.node.Role().String(), "epoch": s.node.Epoch(), "fenced": s.node.Fenced(),
	})
}

// registerReplMetrics puts the replication surface on /metrics: role,
// epoch, fencing, both lag gauges, and the stream counters on each side.
func (s *Server) registerReplMetrics() {
	reg := s.reg
	reg.GaugeFunc("prorp_repl_role", "Replication role: 1 primary, 0 replica.",
		func() float64 {
			if s.node.Role() == repl.RolePrimary {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("prorp_repl_epoch", "Highest replication epoch observed.",
		func() float64 { return float64(s.node.Epoch()) })
	reg.GaugeFunc("prorp_repl_fenced", "1 when this node is a fenced ex-primary.",
		func() float64 {
			if s.node.Fenced() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("prorp_repl_lag_records", "Records behind the primary (replica side).",
		func() float64 { r, _ := s.ReplicationLag(); return float64(r) })
	reg.GaugeFunc("prorp_repl_lag_seconds", "Age of the newest applied streamed record.",
		func() float64 { _, sec := s.ReplicationLag(); return sec })
	reg.GaugeFunc("prorp_repl_stream_lag_records", "Records the last stream response left behind (primary side).",
		func() float64 { return float64(s.repl.streamLag.Load()) })

	counters := []struct {
		name, help string
		v          *atomic.Uint64
	}{
		{"prorp_repl_writes_rejected_total", "Mutations rejected with 503 on a non-primary.", &s.repl.writesRejected},
		{"prorp_repl_stream_batches_total", "Stream batches served to followers.", &s.repl.streamBatches},
		{"prorp_repl_stream_records_total", "Journal records shipped to followers.", &s.repl.streamRecords},
		{"prorp_repl_snapshots_served_total", "Resync snapshots served to followers.", &s.repl.snapshotsServed},
		{"prorp_repl_records_applied_total", "Streamed records journaled and applied.", &s.repl.applied},
		{"prorp_repl_records_skipped_total", "Streamed records skipped as already applied.", &s.repl.applySkipped},
	}
	for _, c := range counters {
		v := c.v
		reg.CounterFunc(c.name, c.help, func() uint64 { return v.Load() })
	}

	if s.follower != nil {
		followerCounters := []struct {
			name, help string
			fn         func(repl.FollowerStats) uint64
		}{
			{"prorp_repl_follower_batches_total", "Stream batches applied.", func(st repl.FollowerStats) uint64 { return st.Batches }},
			{"prorp_repl_follower_caught_up_polls_total", "Polls that found nothing new.", func(st repl.FollowerStats) uint64 { return st.CaughtUpPolls }},
			{"prorp_repl_follower_errors_total", "Stream, apply, and persist errors.", func(st repl.FollowerStats) uint64 { return st.StreamErrors }},
			{"prorp_repl_follower_corrupt_batches_total", "Batches cut or corrupted in flight.", func(st repl.FollowerStats) uint64 { return st.CorruptBatches }},
			{"prorp_repl_follower_resyncs_total", "Snapshot resyncs completed.", func(st repl.FollowerStats) uint64 { return st.Resyncs }},
		}
		for _, c := range followerCounters {
			fn := c.fn
			reg.CounterFunc(c.name, c.help, func() uint64 { return fn(s.follower.Stats()) })
		}
	}
}
