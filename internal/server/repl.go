package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prorp"
	"prorp/internal/breaker"
	"prorp/internal/faults"
	"prorp/internal/repl"
	"prorp/internal/wal"
)

// Replication wiring of the serving runtime: the primary's stream and
// snapshot endpoints, the replica's apply/resync/persist hooks, the
// repl-state file, and the write gate. The protocol itself (cursors,
// epochs, the follower loop) lives in internal/repl; everything here is
// the server gluing that protocol onto its WAL, fleet, and wake timers.

// errNotPrimary refuses a mutation on a node that cannot acknowledge it:
// a replica, or a primary fenced by a newer epoch. Mapped to HTTP 503 —
// the request is fine, this node just isn't the place to send it.
var errNotPrimary = errors.New("not the primary: this node does not accept writes")

// rejectNonPrimary 503s a write on a non-primary, with Retry-After so
// well-behaved clients back off while the load balancer re-routes to the
// primary. Returns true when the request was rejected.
func (s *Server) rejectNonPrimary(w http.ResponseWriter) bool {
	if s.node.CanAcceptWrites() {
		return false
	}
	s.repl.writesRejected.Add(1)
	s.writeErr(w, errNotPrimary)
	return true
}

// replCounters are the stream-side counters, surfaced on /metrics.
type replCounters struct {
	writesRejected  atomic.Uint64 // mutations 503'd on a non-primary
	streamBatches   atomic.Uint64 // 200 stream responses served (primary)
	streamRecords   atomic.Uint64 // records shipped (primary)
	snapshotsServed atomic.Uint64 // resync snapshots served (primary)
	streamLag       atomic.Int64  // records behind at the last stream poll
	applied         atomic.Uint64 // streamed records applied (replica)
	applySkipped    atomic.Uint64 // streamed records already applied (replica)
	quorumTimeouts  atomic.Uint64 // quorum-acked writes refused on timeout
	votesGranted    atomic.Uint64 // election votes this node granted
	votesRefused    atomic.Uint64 // election votes this node refused
	announces       atomic.Uint64 // primary announces delivered to peers
}

// Node exposes the replication state machine, for host wiring and tests.
func (s *Server) Node() *repl.Node { return s.node }

// followerRef is the live follower, nil when this node is not following
// anyone. Atomic because failover creates and drops followers at runtime.
func (s *Server) followerRef() *repl.Follower { return s.followerP.Load() }

// renewLease is the follower's OnPrimaryContact hook: authoritative
// contact from the primary of epoch e extends the lease.
func (s *Server) renewLease(e uint64, ttl time.Duration) {
	if s.lease != nil {
		s.lease.Renew(e, ttl)
	}
}

// currentPrimary is the primary this node believes in right now; it moves
// on every failover (Config.PrimaryAddr is only the boot-time value).
func (s *Server) currentPrimary() string {
	s.primaryMu.Lock()
	defer s.primaryMu.Unlock()
	return s.primaryAddr
}

func (s *Server) setPrimaryAddr(addr string) {
	s.primaryMu.Lock()
	defer s.primaryMu.Unlock()
	s.primaryAddr = addr
}

// ReplicationLag reports how far behind the primary this node is: records
// not yet applied, and the age in seconds of the newest applied record.
// A primary reports zero on both.
func (s *Server) ReplicationLag() (records int64, seconds float64) {
	f := s.followerRef()
	if f == nil {
		return 0, 0
	}
	return f.LagRecords(), f.LagSeconds(s.now())
}

// ----- repl-state file ----------------------------------------------------

// The repl-state file persists the node's epoch, fencing, stream cursor,
// lease expiry, and cursor lineage next to the journal, one line:
// "PRR1 <epoch> <fenced> <cursor> <leaseUnixMilli> <lineage>". Epoch and
// fencing changes are fsynced (a fence that evaporates in a crash is
// split brain); cursor-only progress is best-effort, since a stale cursor
// merely re-streams idempotent records. The lease field makes reboots
// respect an unexpired lease instead of instantly campaigning; the
// lineage field is the reign epoch of the journal the cursor indexes, so
// a rebooted node never compares its cursor against another reign's in a
// vote. Files written before either field existed carry three or four
// fields and load lease-less / lineage-unknown.
const replStateFile = "repl-state"

func replStatePath(walDir string) string {
	if walDir == "" {
		return ""
	}
	return filepath.Join(walDir, replStateFile)
}

// loadReplState reads the persisted node state. A missing file is a fresh
// node; a malformed one refuses the boot — guessing at fencing state is
// how split brain happens.
func loadReplState(fsys faults.FS, path string) (epoch uint64, fenced bool, c wal.Cursor, leaseMs int64, lineage uint64, err error) {
	if path == "" {
		return 0, false, wal.Cursor{}, 0, 0, nil
	}
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return 0, false, wal.Cursor{}, 0, 0, nil
		}
		return 0, false, wal.Cursor{}, 0, 0, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, false, wal.Cursor{}, 0, 0, err
	}
	var fencedInt int
	var curStr string
	// Five fields since lineages landed; files from before leases (three
	// fields) or lineages (four) parse short with an error from Sscanf —
	// accept them with the missing fields zeroed.
	n, serr := fmt.Sscanf(string(data), "PRR1 %d %d %s %d %d", &epoch, &fencedInt, &curStr, &leaseMs, &lineage)
	if n < 3 {
		return 0, false, wal.Cursor{}, 0, 0, fmt.Errorf("malformed repl state %q: %v", data, serr)
	}
	if n < 4 {
		leaseMs = 0
	}
	if n < 5 {
		lineage = 0
	}
	if c, err = wal.ParseCursor(curStr); err != nil {
		return 0, false, wal.Cursor{}, 0, 0, fmt.Errorf("malformed repl state cursor: %w", err)
	}
	return epoch, fencedInt != 0, c, leaseMs, lineage, nil
}

// persistReplState atomically rewrites the repl-state file; doSync forces
// an fsync before the rename. Doubles as the follower's Persist hook.
func (s *Server) persistReplState(epoch uint64, c wal.Cursor, doSync bool) error {
	path := replStatePath(s.cfg.WALDir)
	if path == "" {
		return nil
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	fenced := 0
	if s.node.Fenced() {
		fenced = 1
	}
	var leaseMs int64
	if s.lease != nil {
		if u := s.lease.Until(); !u.IsZero() {
			leaseMs = u.UnixMilli()
		}
	}
	// The lineage rides along with every persist: a follower that learned
	// its stream's reign from the poll headers makes it durable here, so a
	// reboot still knows which journal its cursor indexes.
	if f := s.followerRef(); f != nil {
		if r := f.SourceReign(); r > 0 {
			s.replLineage = r
		}
	}
	line := fmt.Sprintf("PRR1 %d %d %s %d %d\n", epoch, fenced, c, leaseMs, s.replLineage)
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := s.cfg.FS.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write([]byte(line))
	if err == nil && doSync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = s.cfg.FS.Rename(tmp, path)
	}
	if err != nil {
		s.cfg.FS.Remove(tmp)
		return err
	}
	s.replCursor = c
	return nil
}

// loadCursor is the node's current stream position: the live follower's
// cursor on a replica, the last persisted one elsewhere.
func (s *Server) loadCursor() wal.Cursor {
	if f := s.followerRef(); f != nil {
		return f.Cursor()
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.replCursor
}

// ----- replica hooks ------------------------------------------------------

// replDoer is the HTTP client for the replication control and data plane.
// Every path through it — follower poll, snapshot resync, election
// solicitation, peer announce — shares one per-host breaker group, so a
// hung peer costs its first callers the transport timeout and everyone
// after an immediate refusal until the cooldown probe finds it healthy.
func (s *Server) replDoer() faults.Doer {
	inner := faults.Doer(defaultReplClient)
	if s.cfg.ReplDoer != nil {
		inner = s.cfg.ReplDoer
	}
	if s.replBreakers != nil {
		return breaker.Wrap(inner, s.replBreakers)
	}
	return inner
}

var defaultReplClient = &http.Client{Timeout: 30 * time.Second}

// applyStreamed is the follower's Apply hook: journalize-before-apply,
// exactly like a live handler, under the shared side of walGate. An error
// holds the cursor so the record is re-streamed; everything in the stream
// is idempotent under re-apply, so the duplicate journal entry a retry
// leaves behind is skipped at replay like any boundary double-apply.
func (s *Server) applyStreamed(rec wal.Record) error {
	s.walGate.RLock()
	defer s.walGate.RUnlock()
	if _, err := s.journalize(rec.Type, int(rec.ID), time.Unix(rec.Unix, 0)); err != nil {
		return err
	}
	skipped, err := s.applyRecord(rec)
	switch {
	case err != nil:
		return err
	case skipped:
		s.repl.applySkipped.Add(1)
	default:
		s.repl.applied.Add(1)
	}
	return nil
}

// maxSnapshotFetch caps a resync download; a fleet archive is a few
// hundred bytes per database, so 1 GiB is far past any real fleet.
const maxSnapshotFetch = 1 << 30

// replResync is the follower's Resync hook, called when the primary
// reports the cursor unusable (compacted away, or ahead of its lineage):
// fetch the primary's snapshot, swap the local fleet to it, persist the
// adopted state locally, and return the snapshot's journal boundary as
// the cursor to stream from, plus the reign epoch of the journal it
// indexes (from the snapshot response's X-Repl-Reign header).
func (s *Server) replResync(primaryEpoch uint64) (wal.Cursor, uint64, error) {
	if s.store == nil {
		// Without a local snapshot a crash after the swap would replay the
		// pre-resync journal against a post-resync cursor and diverge.
		return wal.Cursor{}, 0, errors.New("snapshot resync requires SnapshotPath on the replica")
	}
	req, err := http.NewRequest(http.MethodGet, s.currentPrimary()+"/v1/repl/snapshot", nil)
	if err != nil {
		return wal.Cursor{}, 0, err
	}
	req.Header.Set(repl.HeaderEpoch, strconv.FormatUint(s.node.Epoch(), 10))
	resp, err := s.replDoer().Do(req)
	if err != nil {
		return wal.Cursor{}, 0, fmt.Errorf("fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return wal.Cursor{}, 0, fmt.Errorf("snapshot fetch: primary said %d", resp.StatusCode)
	}
	reign, _ := strconv.ParseUint(resp.Header.Get(repl.HeaderReign), 10, 64)
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotFetch))
	if err != nil {
		return wal.Cursor{}, 0, fmt.Errorf("reading snapshot: %w", err)
	}
	// The container checksum is the transport integrity check: a snapshot
	// bit-flipped or cut in flight fails here and the resync is retried.
	payload, boundary, err := verifyContainer(data)
	if err != nil {
		return wal.Cursor{}, 0, fmt.Errorf("verifying snapshot: %w", err)
	}
	if boundary == 0 {
		return wal.Cursor{}, 0, errors.New("snapshot carries no journal boundary: primary has no WAL to stream")
	}
	fleet, pending, err := prorp.RestoreShardedFleet(s.cfg.Options, s.cfg.Shards, bytes.NewReader(payload))
	if err != nil {
		return wal.Cursor{}, 0, fmt.Errorf("decoding snapshot: %w", err)
	}
	s.swapFleet(fleet, pending)
	// Make the adoption locally durable before the cursor moves: the local
	// snapshot re-serializes the adopted state and compacts the local
	// journal below it, so a crash right now reboots into the new lineage.
	if _, err := s.writeSnapshot(); err != nil {
		return wal.Cursor{}, 0, fmt.Errorf("persisting resynced state: %w", err)
	}
	cur := wal.Cursor{Seg: boundary, Off: wal.SegmentDataStart}
	s.logf("repl resync: adopted primary snapshot (%d databases, primary epoch %d, reign %d), streaming from %s",
		fleet.Size(), primaryEpoch, reign, cur)
	return cur, reign, nil
}

// swapFleet replaces the serving runtime after a snapshot resync: swap
// the pointer, re-point the fleet gauges at the new runtime, rebuild the
// wake timers from the snapshot's pending set, and close the old fleet.
// A read racing the swap may see the old fleet report closed; resync is
// already an exceptional event and the 503 is momentary.
func (s *Server) swapFleet(fleet *prorp.ShardedFleet, pending []prorp.PendingWake) {
	old := s.fleetP.Swap(fleet)
	fleet.InstrumentObs(s.reg) // GaugeFunc re-registration re-points the closures
	s.wakes.reset()
	for _, w := range pending {
		s.wakes.schedule(w.ID, w.WakeAt)
	}
	if old != nil {
		old.Close()
	}
}

// ----- primary endpoints --------------------------------------------------

const (
	defaultStreamBatch = 256 << 10
	maxStreamBatch     = 4 << 20
)

// observePeerEpoch folds a peer's epoch header into the node. This is how
// fencing propagates: the first stream poll a new-epoch follower sends to
// the old primary demotes it, durably, before the response goes out.
func (s *Server) observePeerEpoch(r *http.Request) {
	e, err := strconv.ParseUint(r.Header.Get(repl.HeaderEpoch), 10, 64)
	if err != nil || e == 0 {
		return
	}
	if s.node.ObserveEpoch(e) {
		if perr := s.persistReplState(s.node.Epoch(), s.loadCursor(), true); perr != nil {
			s.logf("persisting observed epoch %d: %v", e, perr)
		}
		if s.node.Fenced() {
			s.logf("fenced: observed epoch %d from a peer; this node no longer accepts writes", e)
		}
	}
}

// notePeerID watches for two different remote hosts polling under the
// same X-Repl-Node id — misconfigured replicas sharing a node id collapse
// into ONE entry in the quorum coverage map, silently weakening K. The
// config-time check in New catches the empty default; this catches two
// nodes explicitly configured with the same id, which only the primary
// can see. Log-only: refusing the poll would turn a labeling mistake into
// an availability outage.
func (s *Server) notePeerID(id, remoteAddr string) {
	if id == "" || s.coverage == nil {
		return
	}
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil || host == "" {
		return // in-process transports carry no usable remote address
	}
	s.peerAddrMu.Lock()
	defer s.peerAddrMu.Unlock()
	if s.peerAddrs == nil {
		s.peerAddrs = make(map[string]string)
	}
	if prev, ok := s.peerAddrs[id]; ok && prev != host {
		s.logf("repl quorum: node id %q polled from %s and %s — duplicate ids collapse into one quorum peer; give each replica a distinct -repl-node", id, prev, host)
	}
	s.peerAddrs[id] = host
}

// handleReplStream serves one batch of WAL frames after a cursor. Only
// records durable per the fsync policy are shipped — the stream can never
// run ahead of what a crash would preserve — and the poisoned tail is
// excluded for the same reason appends past it are refused.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	s.observePeerEpoch(r)
	w.Header().Set(repl.HeaderEpoch, strconv.FormatUint(s.node.Epoch(), 10))
	// The lease heartbeat rides the stream headers — but ONLY from the
	// unfenced primary. A fenced ex-primary still serves the stream (its
	// tail is what catch-up needs), yet it must not extend anyone's lease:
	// a follower still pointed at it has to time out and elect.
	if s.cfg.LeaseTTL > 0 && s.node.CanAcceptWrites() {
		w.Header().Set(repl.HeaderLeaseTTL, strconv.FormatInt(s.cfg.LeaseTTL.Milliseconds(), 10))
	}
	if s.node.Role() != repl.RolePrimary || s.wal == nil {
		// Replicas don't relay. A fenced primary, though, still serves the
		// stream: its acknowledged tail is exactly what a catching-up
		// follower of the new epoch needs to drain.
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	// The reign tags the journal being served — set even when fenced: a
	// fenced ex-primary's epoch has moved on, but the journal it serves is
	// still the old reign's cursor space, and that is what the follower's
	// cursor will index.
	if lin := s.lineage(); lin > 0 {
		w.Header().Set(repl.HeaderReign, strconv.FormatUint(lin, 10))
	}
	s.notePeerID(r.Header.Get(repl.HeaderNode), r.RemoteAddr)
	cur, err := wal.ParseCursor(r.URL.Query().Get("after"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	maxBytes := defaultStreamBatch
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("bad max %q", v)})
			return
		}
		maxBytes = min(n, maxStreamBatch)
	}
	data, start, next, err := s.wal.ReadAfter(cur, maxBytes)
	// A poll at ?after=<cur> means everything before cur is durably
	// journaled on that follower: fold it into quorum coverage. Skip the
	// foreign-lineage case — a cursor from another primary's stream space
	// compares meaninglessly against ours and must not satisfy a quorum.
	if s.coverage != nil && !errors.Is(err, wal.ErrCursorAhead) {
		s.coverage.Observe(r.Header.Get(repl.HeaderNode), cur)
	}
	switch {
	case errors.Is(err, wal.ErrCursorCompacted):
		w.WriteHeader(http.StatusGone) // cursor below retained history: resync
		return
	case errors.Is(err, wal.ErrCursorAhead):
		w.WriteHeader(http.StatusRequestedRangeNotSatisfiable) // foreign lineage: resync
		return
	case err != nil:
		s.logf("repl stream at %s: %v", cur, err)
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	lag := s.wal.TailGapRecords(next)
	s.repl.streamLag.Store(lag)
	if len(data) == 0 {
		w.WriteHeader(http.StatusNoContent) // caught up
		return
	}
	s.repl.streamBatches.Add(1)
	s.repl.streamRecords.Add(uint64(int64(len(data)) / wal.FrameSize))
	w.Header().Set(repl.HeaderCursor, start.String())
	w.Header().Set(repl.HeaderNextCursor, next.String())
	w.Header().Set(repl.HeaderLagRecords, strconv.FormatInt(lag, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// handleReplSnapshot serves a PRS2 container of the current fleet state
// for follower resync. The journal rotates first, exactly like a
// persisted snapshot, so the recorded boundary provably covers every
// event in the archive.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	s.observePeerEpoch(r)
	w.Header().Set(repl.HeaderEpoch, strconv.FormatUint(s.node.Epoch(), 10))
	if s.node.Role() != repl.RolePrimary || s.wal == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	if lin := s.lineage(); lin > 0 {
		w.Header().Set(repl.HeaderReign, strconv.FormatUint(lin, 10))
	}
	var payload bytes.Buffer
	payload.Write(make([]byte, storeHeader2Size)) // container header headroom
	s.walGate.Lock()
	boundary, err := s.wal.Rotate()
	if err == nil {
		_, err = s.Fleet().WriteTo(&payload)
	}
	s.walGate.Unlock()
	if err != nil {
		s.logf("repl snapshot: %v", err)
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	frame := frameContainer(payload.Bytes(), boundary)
	s.repl.snapshotsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.Write(frame)
}

// handleReplPromote makes this node the primary of a new epoch. On an
// unfenced primary it is a no-op reporting the current epoch; on a
// replica or fenced ex-primary it stops the pull loop, bumps the epoch
// durably, and starts acknowledging writes. The old primary fences itself
// the moment the new epoch reaches it over the stream (or via
// POST /v1/repl/fence). Writes acknowledged by the old primary but not
// yet replicated are lost — replication is asynchronous; the lag gauges
// bound that window.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	if s.node.CanAcceptWrites() {
		writeJSON(w, http.StatusOK, map[string]any{
			"role": s.node.Role().String(), "epoch": s.node.Epoch(), "promoted": false,
		})
		return
	}
	epoch, err := s.promoteTo(0)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"role": s.node.Role().String(), "epoch": epoch, "promoted": true,
	})
}

// promoteTo is the shared promotion path behind POST /v1/repl/promote
// (to == 0: bump to a fresh epoch) and an election win (to > 0: become the
// unfenced primary of exactly the epoch the electorate granted). It stops
// and sheds the follower, promotes durably, re-arms the wake loop, and —
// in failover mode — announces the new reign to the peers.
func (s *Server) promoteTo(to uint64) (uint64, error) {
	s.followMu.Lock()
	defer s.followMu.Unlock()
	if f := s.followerP.Load(); f != nil {
		f.Stop() // drain the in-flight batch, then no more pulls
		s.replMu.Lock()
		s.replCursor = f.Cursor() // keep the final stream position on record
		s.replMu.Unlock()
		s.followerP.Store(nil)
	}
	cur := s.loadCursor()
	var epoch uint64
	if to == 0 {
		epoch = s.node.Promote()
	} else {
		if !s.node.PromoteTo(to) {
			return 0, fmt.Errorf("promotion to epoch %d overtaken (node is at %d)", to, s.node.Epoch())
		}
		epoch = to
	}
	// Promotion starts a new reign: this node's journal is now the lineage
	// every follower's cursor will be measured against. Set it before the
	// persist below so it lands in the same durable write.
	s.replMu.Lock()
	s.replLineage = epoch
	s.replMu.Unlock()
	if err := s.persistReplState(epoch, cur, true); err != nil {
		// Promoted in memory but not on disk: a crash now boots back into
		// the old role. Surface it loudly instead of acking.
		s.logf("promotion to epoch %d not durable: %v", epoch, err)
		return 0, fmt.Errorf("promoted to epoch %d, but persisting failed: %v", epoch, err)
	}
	if s.cfg.SelfAddr != "" {
		s.setPrimaryAddr(s.cfg.SelfAddr)
	}
	s.wakes.kick() // the wake loop may start arming timers now
	s.logf("promoted: primary of epoch %d (stream cursor was %s)", epoch, cur)
	if s.elector != nil {
		go s.announcePeers() // tell the cluster now, not at the next beat
	}
	return epoch, nil
}

// adoptPrimary folds in word of a primary at addr holding epoch e (an
// announce received, or a vote refusal naming the leader): adopt the
// epoch — fencing this node if it was an unfenced primary — renew the
// lease, and point the follower at the new address.
func (s *Server) adoptPrimary(addr string, e uint64, ttl time.Duration) {
	if e < s.node.Epoch() || addr == "" || addr == s.cfg.SelfAddr {
		return
	}
	if s.node.ObserveEpoch(e) {
		if err := s.persistReplState(s.node.Epoch(), s.loadCursor(), true); err != nil {
			s.logf("persisting adopted epoch %d: %v", e, err)
		}
		if s.node.Fenced() {
			s.logf("fenced: %s announced epoch %d; this node no longer accepts writes", addr, e)
		}
	}
	if s.node.CanAcceptWrites() {
		return // still the unfenced primary of e: nothing to follow
	}
	s.renewLease(e, ttl)
	s.setPrimaryAddr(addr)
	s.ensureFollowing(addr)
}

// ensureFollowing points this node's pull loop at addr, creating the
// follower if none exists — the self-healing half of failover: a fenced
// ex-primary auto-demotes into a follower of the winner, no operator in
// the loop. A live follower is repointed, which forces a snapshot resync
// (journal offsets are per-lineage; resuming a cursor against a different
// primary's stream would double-apply).
func (s *Server) ensureFollowing(addr string) {
	if addr == "" || addr == s.cfg.SelfAddr {
		return
	}
	s.followMu.Lock()
	defer s.followMu.Unlock()
	if s.closing || s.node.CanAcceptWrites() {
		return
	}
	if f := s.followerP.Load(); f != nil {
		f.SetPrimary(addr)
		return
	}
	if s.wal == nil || s.store == nil {
		s.logf("cannot auto-follow %s: following requires WALDir and SnapshotPath", addr)
		return
	}
	f := repl.NewFollower(repl.FollowerConfig{
		PrimaryURL:    addr,
		Doer:          s.replDoer(),
		Clock:         s.clock,
		PollInterval:  s.cfg.ReplPollInterval,
		MaxBatchBytes: s.cfg.ReplMaxBatchBytes,
		Node:          s.node,
		NodeID:        s.cfg.NodeID,
		Apply:         s.applyStreamed,
		Persist:       s.persistReplState,
		Resync:        s.replResync,
		// An ex-primary's journal is its own lineage; only the new
		// primary's snapshot is a safe starting point.
		ResyncOnStart:    true,
		OnPrimaryContact: s.renewLease,
		Logf:             s.logf,
	}, wal.Cursor{})
	s.followerP.Store(f)
	f.Start()
	s.logf("following %s (auto-demoted into a replica)", addr)
}

// votePosition is this node's position for vote comparisons — cursor plus
// lineage, because a cursor is only comparable against cursors indexing
// the same reign's journal. The follower's live position when following,
// the journal's durable end (under this node's own reign) when this node
// is or last was the stream's source, the persisted pair otherwise.
func (s *Server) votePosition() (wal.Cursor, uint64) {
	if f := s.followerRef(); f != nil {
		if r := f.SourceReign(); r > 0 {
			return f.Cursor(), r
		}
		// The follower has not learned its stream's reign yet (it may not
		// have resynced or polled): fall through to the persisted lineage
		// rather than claiming reign 0 for a possibly non-zero cursor.
		return f.Cursor(), s.lineage()
	}
	if s.wal != nil && s.node.Role() == repl.RolePrimary {
		return s.wal.DurableCursor(), s.lineage()
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.replCursor, s.replLineage
}

// lineage is the reign epoch of the journal this node's cursor indexes.
func (s *Server) lineage() uint64 {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.replLineage
}

// handleReplVote is the voter side of a replica-initiated election; the
// verdict logic lives in repl.HandleVote.
// readControlBody reads a control-plane request body into v, verifying
// the sender's checksum when one was sent (our own clients always send
// one; a bare curl may not). A mismatch means the body was damaged in
// flight and must not be acted on.
func readControlBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return err
	}
	if want := r.Header.Get(repl.HeaderSum); want != "" {
		if got := repl.BodySum(body); got != want {
			return fmt.Errorf("body damaged in flight: sum %s, want %s", got, want)
		}
	}
	return json.Unmarshal(body, v)
}

// writeSummedJSON writes a control-plane JSON response with its CRC in
// repl.HeaderSum, so the receiver can reject bodies damaged in flight
// instead of folding in a corrupted epoch.
func writeSummedJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(repl.HeaderSum, repl.BodySum(body))
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) handleReplVote(w http.ResponseWriter, r *http.Request) {
	var req repl.VoteRequest
	if err := readControlBody(w, r, 1<<12, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad vote body: " + err.Error()})
		return
	}
	if req.Epoch == 0 {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "vote epoch must be positive"})
		return
	}
	leader := s.currentPrimary()
	if s.node.CanAcceptWrites() {
		leader = s.cfg.SelfAddr
	}
	cur, lin := s.votePosition()
	resp := repl.HandleVote(s.node, cur, lin, leader, func() error {
		return s.persistReplState(s.node.Epoch(), s.loadCursor(), true)
	}, req)
	if resp.Granted {
		s.repl.votesGranted.Add(1)
		// Granting is evidence an election is already in progress: stand
		// down for a full TTL (Raft's reset-timer-on-grant), or a voter
		// whose own deadline fires moments later dethrones the fresh
		// winner before its first announce can land.
		if s.lease != nil {
			s.lease.Renew(resp.Epoch, 0)
		}
		s.logf("vote granted: %s is our candidate for epoch %d", req.Candidate, req.Epoch)
	} else {
		s.repl.votesRefused.Add(1)
		s.logf("vote refused for %s (epoch %d): %s", req.Candidate, req.Epoch, resp.Reason)
	}
	writeSummedJSON(w, http.StatusOK, resp)
}

// announceBody is the primary's reign broadcast, POSTed to
// /v1/repl/announce on every peer each LeaseTTL/2.
type announceBody struct {
	Epoch uint64 `json:"epoch"`
	Addr  string `json:"addr"`
	Node  string `json:"node"`
}

// handleReplAnnounce receives a primary's reign broadcast. Accepting it
// renews the lease and (re)points the follower — including auto-demoting
// a fenced ex-primary that just rebooted. The response carries this
// node's epoch, so a STALE announcer learns it was superseded and fences
// itself: fencing closes in both directions.
func (s *Server) handleReplAnnounce(w http.ResponseWriter, r *http.Request) {
	var req announceBody
	if err := readControlBody(w, r, 1<<12, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad announce body: " + err.Error()})
		return
	}
	if req.Epoch == 0 || req.Addr == "" {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "announce requires epoch and addr"})
		return
	}
	s.adoptPrimary(req.Addr, req.Epoch, 0)
	writeSummedJSON(w, http.StatusOK, map[string]any{
		"epoch":  s.node.Epoch(),
		"fenced": s.node.Fenced(),
		"role":   s.node.Role().String(),
	})
}

// announceLoop broadcasts this node's reign to every peer each LeaseTTL/2
// while it is the unfenced primary — the out-of-band half of the lease
// heartbeat (the in-band half rides the stream response headers), and
// what re-captures a rebooted ex-primary that nobody is streaming from.
func (s *Server) announceLoop() {
	defer s.bg.Done()
	interval := s.cfg.LeaseTTL / 2
	if interval <= 0 {
		interval = time.Second
	}
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if s.node.CanAcceptWrites() {
			s.announcePeers()
		}
		s.sleepInterruptible(interval)
	}
}

// sleepInterruptible sleeps on the injected clock, returning early on
// shutdown; the clock's Sleep runs in a goroutine so a manual test clock
// cannot wedge Close.
func (s *Server) sleepInterruptible(d time.Duration) {
	ch := make(chan struct{})
	go func() {
		s.clock.Sleep(d)
		close(ch)
	}()
	select {
	case <-s.stop:
	case <-ch:
	}
}

// announcePeers POSTs one reign broadcast to every peer in parallel and
// folds each response's epoch back in — a peer that refuses because it
// has seen further is how a stale primary discovers it must fence.
func (s *Server) announcePeers() {
	body, err := json.Marshal(announceBody{
		Epoch: s.node.Epoch(), Addr: s.cfg.SelfAddr, Node: s.cfg.NodeID,
	})
	if err != nil {
		return
	}
	var wg sync.WaitGroup
	for name, base := range s.cfg.ReplPeers {
		wg.Add(1)
		go func(name, base string) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, base+"/v1/repl/announce", bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(repl.HeaderEpoch, strconv.FormatUint(s.node.Epoch(), 10))
			req.Header.Set(repl.HeaderSum, repl.BodySum(body))
			resp, err := s.replDoer().Do(req)
			if err != nil {
				return
			}
			defer func() {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}()
			s.repl.announces.Add(1)
			// Only a checksum-verified response may move the epoch: a bit
			// flip in the reply must read as a dropped round trip, not as a
			// peer from the future.
			rbody, err := repl.VerifiedBody(resp, 1<<12)
			if err != nil {
				return
			}
			var out struct {
				Epoch uint64 `json:"epoch"`
			}
			if json.Unmarshal(rbody, &out) == nil && out.Epoch > 0 {
				if s.node.ObserveEpoch(out.Epoch) {
					if perr := s.persistReplState(s.node.Epoch(), s.loadCursor(), true); perr != nil {
						s.logf("persisting epoch %d learned from %s: %v", out.Epoch, name, perr)
					}
					if s.node.Fenced() {
						s.logf("fenced: peer %s is at epoch %d; this node no longer accepts writes", name, out.Epoch)
					}
				}
			}
		}(name, base)
	}
	wg.Wait()
}

// handleReplFence force-feeds the node an epoch, fencing a primary
// without waiting for a follower of the new epoch to reach it. Operators
// call it on the old primary right after promoting a replica.
func (s *Server) handleReplFence(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Epoch uint64 `json:"epoch"`
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<10)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad fence body: " + err.Error()})
		return
	}
	if req.Epoch == 0 {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "fence epoch must be positive"})
		return
	}
	if s.node.ObserveEpoch(req.Epoch) {
		if err := s.persistReplState(s.node.Epoch(), s.loadCursor(), true); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorJSON{Error: "fence not durable: " + err.Error()})
			return
		}
		s.logf("fenced at epoch %d by operator", req.Epoch)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"role": s.node.Role().String(), "epoch": s.node.Epoch(), "fenced": s.node.Fenced(),
	})
}

// registerReplMetrics puts the replication surface on /metrics: role,
// epoch, fencing, both lag gauges, and the stream counters on each side.
func (s *Server) registerReplMetrics() {
	reg := s.reg
	reg.GaugeFunc("prorp_repl_role", "Replication role: 1 primary, 0 replica.",
		func() float64 {
			if s.node.Role() == repl.RolePrimary {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("prorp_repl_epoch", "Highest replication epoch observed.",
		func() float64 { return float64(s.node.Epoch()) })
	reg.GaugeFunc("prorp_repl_fenced", "1 when this node is a fenced ex-primary.",
		func() float64 {
			if s.node.Fenced() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("prorp_repl_lag_records", "Records behind the primary (replica side).",
		func() float64 { r, _ := s.ReplicationLag(); return float64(r) })
	reg.GaugeFunc("prorp_repl_lag_seconds", "Age of the newest applied streamed record.",
		func() float64 { _, sec := s.ReplicationLag(); return sec })
	reg.GaugeFunc("prorp_repl_stream_lag_records", "Records the last stream response left behind (primary side).",
		func() float64 { return float64(s.repl.streamLag.Load()) })

	counters := []struct {
		name, help string
		v          *atomic.Uint64
	}{
		{"prorp_repl_writes_rejected_total", "Mutations rejected with 503 on a non-primary.", &s.repl.writesRejected},
		{"prorp_repl_stream_batches_total", "Stream batches served to followers.", &s.repl.streamBatches},
		{"prorp_repl_stream_records_total", "Journal records shipped to followers.", &s.repl.streamRecords},
		{"prorp_repl_snapshots_served_total", "Resync snapshots served to followers.", &s.repl.snapshotsServed},
		{"prorp_repl_records_applied_total", "Streamed records journaled and applied.", &s.repl.applied},
		{"prorp_repl_records_skipped_total", "Streamed records skipped as already applied.", &s.repl.applySkipped},
		{"prorp_repl_election_votes_granted_total", "Election votes this node granted.", &s.repl.votesGranted},
		{"prorp_repl_election_votes_refused_total", "Election votes this node refused.", &s.repl.votesRefused},
	}
	for _, c := range counters {
		v := c.v
		reg.CounterFunc(c.name, c.help, func() uint64 { return v.Load() })
	}

	// Follower counters sample through the atomic pointer: failover creates
	// followers after registration (an ex-primary auto-demoting), so they
	// are registered whenever one exists now OR could exist later.
	if s.followerRef() != nil || len(s.cfg.ReplPeers) > 0 {
		followerCounters := []struct {
			name, help string
			fn         func(repl.FollowerStats) uint64
		}{
			{"prorp_repl_follower_batches_total", "Stream batches applied.", func(st repl.FollowerStats) uint64 { return st.Batches }},
			{"prorp_repl_follower_caught_up_polls_total", "Polls that found nothing new.", func(st repl.FollowerStats) uint64 { return st.CaughtUpPolls }},
			{"prorp_repl_follower_errors_total", "Stream, apply, and persist errors.", func(st repl.FollowerStats) uint64 { return st.StreamErrors }},
			{"prorp_repl_follower_corrupt_batches_total", "Batches cut or corrupted in flight.", func(st repl.FollowerStats) uint64 { return st.CorruptBatches }},
			{"prorp_repl_follower_resyncs_total", "Snapshot resyncs completed.", func(st repl.FollowerStats) uint64 { return st.Resyncs }},
		}
		for _, c := range followerCounters {
			fn := c.fn
			reg.CounterFunc(c.name, c.help, func() uint64 {
				f := s.followerRef()
				if f == nil {
					return 0
				}
				return fn(f.Stats())
			})
		}
	}

	if s.lease != nil {
		reg.GaugeFunc("prorp_repl_lease_ttl_seconds", "Configured primary-lease TTL.",
			func() float64 { return s.lease.TTL().Seconds() })
		reg.GaugeFunc("prorp_repl_lease_remaining_seconds", "Lease remaining (negative: lapsed by that much).",
			func() float64 { return s.lease.Remaining(s.now()).Seconds() })
		reg.GaugeFunc("prorp_repl_lease_expired", "1 when the primary lease has lapsed.",
			func() float64 {
				if s.lease.Expired(s.now()) {
					return 1
				}
				return 0
			})
		reg.CounterFunc("prorp_repl_lease_renewals_total", "Lease renewals from primary contact.",
			func() uint64 { return s.lease.Renewals() })
	}
	if s.elector != nil {
		reg.CounterFunc("prorp_repl_election_campaigns_total", "Candidacies this node stood.",
			func() uint64 { return s.elector.Stats().Campaigns })
		reg.CounterFunc("prorp_repl_election_wins_total", "Elections this node won.",
			func() uint64 { return s.elector.Stats().Wins })
		reg.CounterFunc("prorp_repl_election_losses_total", "Candidacies that fell short of a majority.",
			func() uint64 { return s.elector.Stats().Losses })
		reg.CounterFunc("prorp_repl_announces_total", "Reign broadcasts delivered to peers.",
			func() uint64 { return s.repl.announces.Load() })
	}
	if s.coverage != nil {
		reg.GaugeFunc("prorp_repl_quorum_acks", "Replica acks each write waits for (K).",
			func() float64 { return float64(s.cfg.QuorumAcks) })
		reg.GaugeFunc("prorp_repl_quorum_peers", "Distinct followers observed for quorum coverage.",
			func() float64 { return float64(s.coverage.Peers()) })
		reg.CounterFunc("prorp_repl_quorum_timeouts_total", "Quorum-acked writes refused on timeout.",
			func() uint64 { return s.repl.quorumTimeouts.Load() })
	}
}
