package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"prorp/internal/repl"
)

// TestQuorumAckTimeout covers -quorum-acks' refusal path: with K=1 and no
// replica attached, a write journals and applies locally but its ack is
// REFUSED with 503 + Retry-After — never silently downgraded to an async
// ack — and the timeout counts on /metrics. Once a replica's polls cover
// the journal, the same write mode acks normally.
func TestQuorumAckTimeout(t *testing.T) {
	clock := &fakeClock{t: t0}
	net := &mapDoer{}

	pcfg := replConfig(t.TempDir(), clock)
	pcfg.QuorumAcks = 1
	pcfg.NodeID = "a" // quorum mode refuses the shared default id
	// Wall-clock by design: quorum is a liveness SLA on real replicas, so
	// it must not hang off the injected test clock.
	pcfg.QuorumTimeout = 40 * time.Millisecond
	p, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	net.bind("a", p)

	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/db", strings.NewReader(`{"id":1}`)))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("unreplicated quorum write = %d (Retry-After %q), want 503 with Retry-After",
			rec.Code, rec.Header().Get("Retry-After"))
	}
	if body := rec.Body.String(); !strings.Contains(body, "quorum") || !strings.Contains(body, "0 replica(s) known") {
		t.Fatalf("refusal does not explain itself: %s", body)
	}
	// The 503 means "unacknowledged under the replication contract", not
	// "rolled back": the record is in the journal and applied locally, and
	// may surface again at replay — exactly like a kill between fsync and
	// response.
	if _, err := p.Fleet().State(1); err != nil {
		t.Fatalf("refused ack rolled back the journaled create: %v", err)
	}
	mrec := httptest.NewRecorder()
	p.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), "prorp_repl_quorum_timeouts_total 1") {
		t.Fatal("quorum timeout not counted on /metrics")
	}

	// A replica attaches; its polls are the quorum now.
	rcfg := replConfig(t.TempDir(), clock)
	rcfg.Role = repl.RoleReplica
	rcfg.PrimaryAddr = "http://a"
	rcfg.ReplDoer = net
	rcfg.ReplPollInterval = time.Millisecond
	rcfg.NodeID = "r1"
	r, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	id := 1
	waitUntil(t, "quorum-acked writes to ack once the replica covers them", func() bool {
		id++
		rec := httptest.NewRecorder()
		p.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/db",
			strings.NewReader(fmt.Sprintf(`{"id":%d}`, id))))
		return rec.Code == http.StatusCreated
	})
}

// TestQuorumRequiresNodeIdentity pins the config guard: quorum-acked mode
// with neither NodeID nor SelfAddr refuses to boot, because replicas
// falling back to the shared "node" default collapse into one entry in
// the coverage map and a K>=2 quorum then times out every write.
func TestQuorumRequiresNodeIdentity(t *testing.T) {
	cfg := replConfig(t.TempDir(), &fakeClock{t: t0})
	cfg.QuorumAcks = 2
	cfg.NodeID, cfg.SelfAddr = "", ""
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "identity") {
		t.Fatalf("quorum mode booted without a node identity: %v", err)
	}
	// Either identity field satisfies the guard (NodeID defaults to SelfAddr).
	cfg.SelfAddr = "http://a"
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("SelfAddr alone refused: %v", err)
	}
	s.Close()
}

// TestReplStateLeaseRoundTrip pins the PRR1 lease field: a renewed lease
// persists its expiry instant, a reboot inside the grant restores it
// (instead of instantly campaigning against a primary that was alive
// moments ago), a pre-lease three-field file still boots — lease-less —
// and a malformed file still refuses the boot.
func TestReplStateLeaseRoundTrip(t *testing.T) {
	clock := &fakeClock{t: t0}
	dir := t.TempDir()
	cfg := replConfig(dir, clock)
	cfg.Role = repl.RoleReplica
	cfg.PrimaryAddr = "http://nowhere"
	cfg.ReplDoer = &mapDoer{} // nothing bound: the follower polls fail fast
	cfg.LeaseTTL = 10 * time.Second
	cfg.ElectionTimeout = time.Hour // the manual clock never advances; no campaigns
	cfg.SelfAddr = "http://self"
	cfg.NodeID = "self"
	cfg.ReplPeers = map[string]string{"peer": "http://peer"}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A node that never heard from a primary boots with an expired lease.
	if !s.lease.Expired(clock.Now()) {
		t.Fatal("fresh boot got a live lease")
	}
	s.lease.Renew(1, 0)
	if err := s.persistReplState(s.Node().Epoch(), s.loadCursor(), true); err != nil {
		t.Fatal(err)
	}
	s.Close()

	data, err := os.ReadFile(replStatePath(cfg.WALDir))
	if err != nil {
		t.Fatal(err)
	}
	var epoch uint64
	var fenced int
	var cur string
	var leaseMs int64
	var lineage uint64
	if n, _ := fmt.Sscanf(string(data), "PRR1 %d %d %s %d %d", &epoch, &fenced, &cur, &leaseMs, &lineage); n != 5 {
		t.Fatalf("repl-state %q did not persist the lease and lineage fields", data)
	}
	if want := t0.Add(10 * time.Second).UnixMilli(); leaseMs != want {
		t.Fatalf("persisted lease expiry %d, want %d", leaseMs, want)
	}

	// Reboot inside the grant: the lease is alive until the persisted
	// instant, no longer.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.lease.Expired(clock.Now()) {
		t.Fatal("reboot discarded an unexpired lease")
	}
	if got, want := s2.lease.Until(), t0.Add(10*time.Second); !got.Equal(want) {
		t.Fatalf("restored lease until %v, want %v", got, want)
	}
	s2.Close()

	// Files written before leases existed carry three fields: accepted,
	// loaded lease-less.
	if err := os.WriteFile(replStatePath(cfg.WALDir), []byte("PRR1 7 0 0:0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := New(cfg)
	if err != nil {
		t.Fatalf("three-field repl-state refused: %v", err)
	}
	if s3.Node().Epoch() != 7 || !s3.lease.Expired(clock.Now()) {
		t.Fatalf("three-field boot: epoch=%d leaseExpired=%v", s3.Node().Epoch(), s3.lease.Expired(clock.Now()))
	}
	s3.Close()

	// Files from before cursor lineages carry four: accepted, the lineage
	// unknown (0) — the voter then abstains from cursor comparisons rather
	// than guessing which reign its cursor came from.
	if err := os.WriteFile(replStatePath(cfg.WALDir), []byte("PRR1 7 0 2:64 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s4, err := New(cfg)
	if err != nil {
		t.Fatalf("four-field repl-state refused: %v", err)
	}
	if cur4, lin4 := s4.votePosition(); lin4 != 0 || cur4.Seg != 2 {
		t.Fatalf("four-field boot: cursor=%v lineage=%d, want 2:64 with lineage 0", cur4, lin4)
	}
	s4.Close()

	// Guessing at fencing state is how split brain happens: malformed
	// still refuses the boot.
	if err := os.WriteFile(replStatePath(cfg.WALDir), []byte("PRR1 what\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("malformed repl-state booted")
	}
}
