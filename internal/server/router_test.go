package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prorp/internal/shardmap"
)

// newGroupCluster boots n single-primary groups named g1..gN, wired
// through one in-process mapDoer: each group's peers point at the others
// by host name. mutate, when non-nil, adjusts each group's Config before
// boot (snapshots, redirect mode, a wrapped transport). Pass net so a test
// can wrap it (fault injection, hanging peers) for individual groups.
func newGroupCluster(t *testing.T, clock interface{ Now() time.Time }, n int, net *mapDoer, mutate func(g string, cfg *Config)) map[string]*Server {
	t.Helper()
	groups := make([]string, n)
	for i := range groups {
		groups[i] = fmt.Sprintf("g%d", i+1)
	}
	srvs := make(map[string]*Server, n)
	for _, g := range groups {
		peers := make(map[string]string)
		for _, o := range groups {
			if o != g {
				peers[o] = "http://" + o
			}
		}
		cfg := Config{
			Options:    testOptions(),
			Shards:     4,
			Group:      g,
			GroupPeers: peers,
			RouterDoer: net,
			Now:        clock.Now,
			Sleep:      noSleep,
			Logf:       t.Logf,
		}
		if mutate != nil {
			mutate(g, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatalf("boot group %s: %v", g, err)
		}
		t.Cleanup(func() { srv.Close() })
		net.bind(g, srv)
		srvs[g] = srv
	}
	return srvs
}

// idsOwnedBy returns the first n database ids (counting up from `from`)
// whose slots the map assigns to group g.
func idsOwnedBy(t *testing.T, m *shardmap.Map, g string, n, from int) []int {
	t.Helper()
	var ids []int
	for id := from; len(ids) < n && id < from+100000; id++ {
		if m.OwnerOf(id) == g {
			ids = append(ids, id)
		}
	}
	if len(ids) < n {
		t.Fatalf("found only %d ids owned by %s", len(ids), g)
	}
	return ids
}

// TestRouterProxyServesRemoteOwned covers the proxy path: every
// per-database verb sent to the wrong group lands on the owner and the
// reply comes back through the proxying group, tagged with the serving
// group's identity.
func TestRouterProxyServesRemoteOwned(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srvs := newGroupCluster(t, clock, 2, &mapDoer{}, nil)
	g1, g2 := srvs["g1"], srvs["g2"]
	m := g1.router.mapP.Load()

	local := idsOwnedBy(t, m, "g1", 1, 1)[0]
	remote := idsOwnedBy(t, m, "g2", 1, 1)[0]

	// Local create is served here, not proxied.
	code, out := call(t, g1, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, local))
	wantStatus(t, code, http.StatusCreated, out)

	// Remote create through g1 must land on g2.
	req := httptest.NewRequest("POST", "/v1/db", strings.NewReader(fmt.Sprintf(`{"id":%d}`, remote)))
	rec := httptest.NewRecorder()
	g1.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("proxied create = %d (%s)", rec.Code, rec.Body.String())
	}
	if g := rec.Header().Get(HeaderShardGroup); g != "g2" {
		t.Fatalf("proxied create %s = %q, want g2", HeaderShardGroup, g)
	}
	if _, err := g2.Fleet().State(remote); err != nil {
		t.Fatalf("proxied create did not land on owner: %v", err)
	}
	if _, err := g1.Fleet().State(remote); err == nil {
		t.Fatalf("proxied create also landed on the proxying group")
	}

	// Events and reads route the same way.
	code, out = call(t, g1, "POST", fmt.Sprintf("/v1/db/%d/logout", remote), "")
	wantStatus(t, code, http.StatusOK, out)
	code, out = call(t, g1, "GET", fmt.Sprintf("/v1/db/%d", remote), "")
	wantStatus(t, code, http.StatusOK, out)
	if out["state"] != "logically-paused" {
		t.Fatalf("proxied read state = %v", out["state"])
	}
	code, out = call(t, g1, "DELETE", fmt.Sprintf("/v1/db/%d", remote), "")
	wantStatus(t, code, http.StatusOK, out)
	if _, err := g2.Fleet().State(remote); err == nil {
		t.Fatalf("proxied delete did not reach the owner")
	}

	// Traffic split is visible on /metrics of both sides.
	s1 := scrape(t, g1)
	if v := sampleValue(t, s1, "prorp_router_proxied_total", nil); v < 4 {
		t.Fatalf("g1 proxied_total = %v, want >= 4", v)
	}
	if v := sampleValue(t, s1, "prorp_router_local_requests_total", nil); v < 1 {
		t.Fatalf("g1 local_requests_total = %v, want >= 1", v)
	}
	s2 := scrape(t, g2)
	if v := sampleValue(t, s2, "prorp_router_local_requests_total", nil); v < 4 {
		t.Fatalf("g2 local_requests_total = %v, want >= 4", v)
	}
	if v := sampleValue(t, s1, "prorp_shardmap_version", nil); v != 1 {
		t.Fatalf("shardmap_version gauge = %v, want 1", v)
	}
}

// TestRouterRedirectMode covers -route-redirect: remote-owned requests are
// bounced with 307 + Location instead of proxied.
func TestRouterRedirectMode(t *testing.T) {
	clock := &fakeClock{t: t0}
	srvs := newGroupCluster(t, clock, 2, &mapDoer{}, func(g string, cfg *Config) {
		cfg.RouterRedirect = true
	})
	g1 := srvs["g1"]
	m := g1.router.mapP.Load()
	remote := idsOwnedBy(t, m, "g2", 1, 1)[0]

	req := httptest.NewRequest("POST", fmt.Sprintf("/v1/db/%d/login", remote), nil)
	rec := httptest.NewRecorder()
	g1.ServeHTTP(rec, req)
	if rec.Code != http.StatusTemporaryRedirect {
		t.Fatalf("redirect-mode remote request = %d, want 307", rec.Code)
	}
	wantLoc := fmt.Sprintf("http://g2/v1/db/%d/login", remote)
	if loc := rec.Header().Get("Location"); loc != wantLoc {
		t.Fatalf("Location = %q, want %q", loc, wantLoc)
	}
	if g := rec.Header().Get(HeaderShardGroup); g != "g2" {
		t.Fatalf("%s = %q, want g2", HeaderShardGroup, g)
	}
	// The 307 body carries the map, so the client can fix its table.
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"shard_map"`)) {
		t.Fatalf("redirect body lacks shard_map: %s", rec.Body.String())
	}
	if v := sampleValue(t, scrape(t, g1), "prorp_router_redirected_total", nil); v != 1 {
		t.Fatalf("redirected_total = %v, want 1", v)
	}
}

// TestRouterStaleVersionAndForwardLoop covers the two misrouting refusals:
// a request pinned to an older map version, and a request that already hopped
// once and would hop again (two groups disagreeing about ownership).
func TestRouterStaleVersionAndForwardLoop(t *testing.T) {
	clock := &fakeClock{t: t0}
	srvs := newGroupCluster(t, clock, 2, &mapDoer{}, nil)
	g1 := srvs["g1"]
	m := g1.router.mapP.Load()
	local := idsOwnedBy(t, m, "g1", 1, 1)[0]
	remote := idsOwnedBy(t, m, "g2", 1, 1)[0]

	// Stale version: the client claims v0, the server runs v1.
	req := httptest.NewRequest("POST", fmt.Sprintf("/v1/db/%d/login", local), nil)
	req.Header.Set(HeaderShardmapVersion, "0")
	rec := httptest.NewRecorder()
	g1.ServeHTTP(rec, req)
	if rec.Code != http.StatusMisdirectedRequest {
		t.Fatalf("stale-version request = %d, want 421 (%s)", rec.Code, rec.Body.String())
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"version":1`)) {
		t.Fatalf("421 body lacks current map: %s", rec.Body.String())
	}

	// Matching version passes.
	req = httptest.NewRequest("POST", fmt.Sprintf("/v1/db/%d", local), strings.NewReader(fmt.Sprintf(`{"id":%d}`, local)))
	req = httptest.NewRequest("POST", "/v1/db", strings.NewReader(fmt.Sprintf(`{"id":%d}`, local)))
	req.Header.Set(HeaderShardmapVersion, "1")
	rec = httptest.NewRecorder()
	g1.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("current-version create = %d (%s)", rec.Code, rec.Body.String())
	}

	// Forwarded loop: a request that claims it was already proxied must not
	// hop again even though another group owns it.
	req = httptest.NewRequest("GET", fmt.Sprintf("/v1/db/%d", remote), nil)
	req.Header.Set(HeaderShardForwarded, "g9")
	rec = httptest.NewRecorder()
	g1.ServeHTTP(rec, req)
	if rec.Code != http.StatusMisdirectedRequest {
		t.Fatalf("forwarded loop = %d, want 421", rec.Code)
	}
	if v := sampleValue(t, scrape(t, g1), "prorp_router_misrouted_total", nil); v != 2 {
		t.Fatalf("misrouted_total = %v, want 2", v)
	}
}

// TestRouterFenceRejectsWrites covers the migration write fence: mutations
// on a fenced slot get 503 + Retry-After, reads keep serving, and the
// fence lifts cleanly.
func TestRouterFenceRejectsWrites(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srvs := newGroupCluster(t, clock, 2, &mapDoer{}, nil)
	g1 := srvs["g1"]
	m := g1.router.mapP.Load()
	id := idsOwnedBy(t, m, "g1", 1, 1)[0]
	code, out := call(t, g1, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
	wantStatus(t, code, http.StatusCreated, out)

	g1.router.fence(shardmap.SlotOf(id))
	req := httptest.NewRequest("POST", fmt.Sprintf("/v1/db/%d/login", id), nil)
	rec := httptest.NewRecorder()
	g1.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("fenced write = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatalf("fenced write has no Retry-After")
	}
	// Reads are not fenced.
	code, out = call(t, g1, "GET", fmt.Sprintf("/v1/db/%d", id), "")
	wantStatus(t, code, http.StatusOK, out)

	g1.router.unfence(shardmap.SlotOf(id))
	code, out = call(t, g1, "POST", fmt.Sprintf("/v1/db/%d/login", id), "")
	wantStatus(t, code, http.StatusOK, out)
	if v := sampleValue(t, scrape(t, g1), "prorp_router_fence_rejects_total", nil); v != 1 {
		t.Fatalf("fence_rejects_total = %v, want 1", v)
	}
}

// TestRouterHealthzAndMapEndpoint covers the partitioned /healthz fields
// and both renderings of GET /v1/shard/map.
func TestRouterHealthzAndMapEndpoint(t *testing.T) {
	clock := &fakeClock{t: t0}
	srvs := newGroupCluster(t, clock, 3, &mapDoer{}, nil)

	ownedTotal := 0
	for g, srv := range srvs {
		code, out := call(t, srv, "GET", "/healthz", "")
		wantStatus(t, code, http.StatusOK, out)
		if out["group"] != g {
			t.Fatalf("healthz group = %v, want %s", out["group"], g)
		}
		if out["shardmap_version"] != float64(1) {
			t.Fatalf("healthz shardmap_version = %v, want 1", out["shardmap_version"])
		}
		ownedTotal += int(out["owned_slots"].(float64))
	}
	if ownedTotal != shardmap.NumSlots {
		t.Fatalf("owned_slots across groups = %d, want %d", ownedTotal, shardmap.NumSlots)
	}

	g1 := srvs["g1"]
	code, out := call(t, g1, "GET", "/v1/shard/map", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["group"] != "g1" || out["role"] != "primary" {
		t.Fatalf("shard map envelope = %v", out)
	}
	sm := out["shard_map"].(map[string]any)
	if sm["version"] != float64(1) {
		t.Fatalf("shard map version = %v", sm["version"])
	}

	// The PRM1 rendering round-trips through Decode and matches.
	req := httptest.NewRequest("GET", "/v1/shard/map?format=prm1", nil)
	rec := httptest.NewRecorder()
	g1.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("prm1 map fetch = %d", rec.Code)
	}
	dm, err := shardmap.Decode(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("prm1 map does not decode: %v", err)
	}
	if !dm.Equal(g1.router.mapP.Load()) {
		t.Fatalf("prm1 map differs from the live map")
	}

	// A single-group server has no shard surface.
	solo, err := New(Config{Options: testOptions(), Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	code, out = call(t, solo, "GET", "/v1/shard/map", "")
	wantStatus(t, code, http.StatusNotFound, out)
	code, out = call(t, solo, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusOK, out)
	if _, has := out["group"]; has {
		t.Fatalf("single-group healthz leaked a group field: %v", out)
	}
}

// TestShardMigrateMovesSlot is the migration happy path: a slot's
// databases move to the destination byte-identically (history and all),
// both groups converge on the bumped map, requests for the moved
// databases re-route, and the endpoint's refusals hold.
func TestShardMigrateMovesSlot(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srvs := newGroupCluster(t, clock, 2, &mapDoer{}, func(g string, cfg *Config) {
		dir := t.TempDir()
		cfg.SnapshotPath = filepath.Join(dir, "fleet.snap")
		cfg.WALDir = filepath.Join(dir, "wal")
		cfg.ShardmapPath = filepath.Join(dir, "shard.map")
	})
	g1, g2 := srvs["g1"], srvs["g2"]
	m := g1.router.mapP.Load()

	// Pick a g1 slot and populate it with a few databases plus history.
	ids := idsOwnedBy(t, m, "g1", 3, 1)
	slot := shardmap.SlotOf(ids[0])
	var moving []int
	for _, id := range ids {
		if shardmap.SlotOf(id) == slot {
			moving = append(moving, id)
		}
	}
	other := idsOwnedBy(t, m, "g1", 10, moving[len(moving)-1]+1)
	stay := -1
	for _, id := range other {
		if shardmap.SlotOf(id) != slot {
			stay = id
			break
		}
	}
	if stay < 0 {
		t.Fatal("no g1 id outside the migrating slot")
	}
	for _, id := range append(append([]int{}, moving...), stay) {
		code, out := call(t, g1, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, out)
		code, out = call(t, g1, "POST", fmt.Sprintf("/v1/db/%d/logout", id), "")
		wantStatus(t, code, http.StatusOK, out)
	}

	// Archive each moving database before the move: the byte-equality oracle.
	want := make(map[int][]byte, len(moving))
	for _, id := range moving {
		var buf bytes.Buffer
		if err := g1.Fleet().Snapshot(id, &buf); err != nil {
			t.Fatal(err)
		}
		want[id] = buf.Bytes()
	}

	code, out := call(t, g1, "POST", "/v1/shard/migrate", fmt.Sprintf(`{"slot":%d,"to":"g2"}`, slot))
	wantStatus(t, code, http.StatusOK, out)
	if int(out["databases"].(float64)) != len(moving) {
		t.Fatalf("migrated %v databases, want %d", out["databases"], len(moving))
	}
	if out["version"] != float64(2) {
		t.Fatalf("post-migration version = %v, want 2", out["version"])
	}

	// Both groups converge on the bumped map; only the destination owns.
	for g, srv := range srvs {
		dm := srv.router.mapP.Load()
		if dm.Version() != 2 || dm.Owner(slot) != "g2" {
			t.Fatalf("%s map: v%d owner %q, want v2 g2", g, dm.Version(), dm.Owner(slot))
		}
	}
	for _, id := range moving {
		if _, err := g1.Fleet().State(id); err == nil {
			t.Fatalf("database %d still on the source after migration", id)
		}
		var buf bytes.Buffer
		if err := g2.Fleet().Snapshot(id, &buf); err != nil {
			t.Fatalf("database %d missing on the destination: %v", id, err)
		}
		if !bytes.Equal(buf.Bytes(), want[id]) {
			t.Fatalf("database %d archive differs after migration", id)
		}
	}
	// The untouched slot stayed put.
	if _, err := g1.Fleet().State(stay); err != nil {
		t.Fatalf("database %d outside the slot was disturbed: %v", stay, err)
	}

	// Requests for moved databases re-route: through g1 they now proxy.
	code, out = call(t, g1, "POST", fmt.Sprintf("/v1/db/%d/login", moving[0]), "")
	wantStatus(t, code, http.StatusOK, out)
	if _, err := g2.Fleet().State(moving[0]); err != nil {
		t.Fatal(err)
	}

	// Idempotent retry: the slot already lives at the destination.
	code, out = call(t, g1, "POST", "/v1/shard/migrate", fmt.Sprintf(`{"slot":%d,"to":"g2"}`, slot))
	wantStatus(t, code, http.StatusOK, out)
	if out["noop"] != true {
		t.Fatalf("repeat migrate = %v, want noop", out)
	}

	// Refusals: out-of-range slot, unknown group, not-the-owner.
	code, out = call(t, g1, "POST", "/v1/shard/migrate", `{"slot":9999,"to":"g2"}`)
	wantStatus(t, code, http.StatusBadRequest, out)
	code, out = call(t, g1, "POST", "/v1/shard/migrate", fmt.Sprintf(`{"slot":%d,"to":"nope"}`, slot))
	wantStatus(t, code, http.StatusBadRequest, out)
	code, out = call(t, g1, "POST", "/v1/shard/migrate", fmt.Sprintf(`{"slot":%d,"to":"g1"}`, slot))
	wantStatus(t, code, http.StatusConflict, out)

	if v := sampleValue(t, scrape(t, g1), "prorp_shard_migrations_total", nil); v != 1 {
		t.Fatalf("migrations_total = %v, want 1", v)
	}
	if v := sampleValue(t, scrape(t, g1), "prorp_shard_dbs_migrated_total", nil); v != float64(len(moving)) {
		t.Fatalf("dbs_migrated_total = %v, want %d", v, len(moving))
	}

	// The bumped map survives a reboot: a fresh g1 server boots from its
	// persisted PRM1 file, still at v2 with the slot owned elsewhere.
	g1cfg := g1.cfg
	if err := g1.Close(); err != nil {
		t.Fatal(err)
	}
	g1b, err := New(g1cfg)
	if err != nil {
		t.Fatalf("reboot source: %v", err)
	}
	defer g1b.Close()
	if dm := g1b.router.mapP.Load(); dm.Version() != 2 || dm.Owner(slot) != "g2" {
		t.Fatalf("rebooted map: v%d owner %q, want v2 g2", dm.Version(), dm.Owner(slot))
	}
}

// TestShardMigrateRefusedByWALOnlyDestination pins the durability guard on
// the destination side: a node that persists through a WAL only (no
// snapshot store) cannot make an adopted slot durable — journal records
// carry no archive payload — so it refuses the transfer structurally and
// the source aborts with its data and map intact.
func TestShardMigrateRefusedByWALOnlyDestination(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srvs := newGroupCluster(t, clock, 2, &mapDoer{}, func(g string, cfg *Config) {
		if g == "g2" {
			cfg.WALDir = filepath.Join(t.TempDir(), "wal") // journal, no snapshot
		}
	})
	g1, g2 := srvs["g1"], srvs["g2"]
	m := g1.router.mapP.Load()
	id := idsOwnedBy(t, m, "g1", 1, 1)[0]
	slot := shardmap.SlotOf(id)
	code, out := call(t, g1, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
	wantStatus(t, code, http.StatusCreated, out)

	code, out = call(t, g1, "POST", "/v1/shard/migrate", fmt.Sprintf(`{"slot":%d,"to":"g2"}`, slot))
	wantStatus(t, code, http.StatusBadGateway, out)
	if e, _ := out["error"].(string); !strings.Contains(e, "WAL only") {
		t.Fatalf("refusal error = %q, want the WAL-only explanation", e)
	}
	// Nothing moved: the source still owns the slot at the original map
	// version and still serves the database; the destination restored nothing.
	if dm := g1.router.mapP.Load(); dm.Version() != 1 || dm.Owner(slot) != "g1" {
		t.Fatalf("source map after refusal: v%d owner %q, want v1 g1", dm.Version(), dm.Owner(slot))
	}
	if _, err := g1.Fleet().State(id); err != nil {
		t.Fatalf("database %d lost on the source after a refused migration: %v", id, err)
	}
	if _, err := g2.Fleet().State(id); err == nil {
		t.Fatalf("database %d restored on the WAL-only destination", id)
	}
	if v := sampleValue(t, scrape(t, g1), "prorp_shard_migration_failures_total", nil); v != 1 {
		t.Fatalf("migration_failures_total = %v, want 1", v)
	}
}

// TestRouterUnknownOwnerAddressCountsMisrouted pins the counter partition
// on the no-address dead end: a remote-owned request whose owning group has
// no peer address is a 421 refusal, counted with the misroutes —
// redirected stays reserved for genuine 307s.
func TestRouterUnknownOwnerAddressCountsMisrouted(t *testing.T) {
	clock := &fakeClock{t: t0}
	srvs := newGroupCluster(t, clock, 2, &mapDoer{}, nil)
	g1 := srvs["g1"]
	m := g1.router.mapP.Load()
	remote := idsOwnedBy(t, m, "g2", 1, 1)[0]
	delete(g1.router.peers, "g2") // the map knows the owner, the address book does not

	req := httptest.NewRequest("POST", fmt.Sprintf("/v1/db/%d/login", remote), nil)
	rec := httptest.NewRecorder()
	g1.ServeHTTP(rec, req)
	if rec.Code != http.StatusMisdirectedRequest {
		t.Fatalf("no-address request = %d, want 421", rec.Code)
	}
	samples := scrape(t, g1)
	if v := sampleValue(t, samples, "prorp_router_misrouted_total", nil); v != 1 {
		t.Fatalf("misrouted_total = %v, want 1", v)
	}
	if v := sampleValue(t, samples, "prorp_router_redirected_total", nil); v != 0 {
		t.Fatalf("redirected_total = %v, want 0", v)
	}
}

// TestRouterProxyAdoptsNewerMap covers the retry-once corner of the proxy
// path: the peer holds a newer map under which the database came *back* to
// the proxying group. The 421 reply carries the newer map; the proxy
// adopts it, re-resolves, and serves locally — one client round trip.
func TestRouterProxyAdoptsNewerMap(t *testing.T) {
	clock := &fakeClock{t: t0}
	srvs := newGroupCluster(t, clock, 2, &mapDoer{}, nil)
	g1, g2 := srvs["g1"], srvs["g2"]
	m := g1.router.mapP.Load()
	id := idsOwnedBy(t, m, "g2", 1, 1)[0]
	slot := shardmap.SlotOf(id)
	m2, err := m.WithOwner(slot, "g1")
	if err != nil {
		t.Fatal(err)
	}
	if !g2.router.adopt(m2) {
		t.Fatal("g2 refused the strictly newer map")
	}

	// g1 still routes by v1 and proxies to g2; g2 refuses the stale version
	// with 421 + its v2 map; g1 adopts it and finds the database local.
	code, out := call(t, g1, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
	wantStatus(t, code, http.StatusCreated, out)
	if v := g1.router.mapP.Load().Version(); v != 2 {
		t.Fatalf("g1 map version after adopt = %d, want 2", v)
	}
	if _, err := g1.Fleet().State(id); err != nil {
		t.Fatalf("database %d not created locally after adopt: %v", id, err)
	}
	if _, err := g2.Fleet().State(id); err == nil {
		t.Fatalf("database %d also created on g2", id)
	}
	samples := scrape(t, g1)
	if v := sampleValue(t, samples, "prorp_shardmap_adoptions_total", nil); v != 1 {
		t.Fatalf("adoptions_total = %v, want 1", v)
	}
}

// TestRouteErrorHelpers pins the routeError message and the shard-map
// extraction from a 421 reply body.
func TestRouteErrorHelpers(t *testing.T) {
	e := &routeError{status: http.StatusMisdirectedRequest, reason: "stale shard map"}
	if e.Error() != "stale shard map" {
		t.Fatalf("routeError.Error() = %q", e.Error())
	}
	if m := mapFromErrorBody([]byte("not json")); m != nil {
		t.Fatalf("mapFromErrorBody(garbage) = %v", m)
	}
	if m := mapFromErrorBody([]byte(`{"error":"x"}`)); m != nil {
		t.Fatalf("mapFromErrorBody(no map) = %v", m)
	}
	want, err := shardmap.New([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	writeErr(rec, &routeError{status: http.StatusMisdirectedRequest, owner: "b",
		m: want, reason: "misrouted"})
	got := mapFromErrorBody(rec.Body.Bytes())
	if got == nil || !got.Equal(want) {
		t.Fatalf("mapFromErrorBody(writeErr body) = %v, want %v", got, want)
	}
}

// TestShardAdoptVerdicts pins the destination-side verdicts of the
// migration protocol outside the happy path: structurally bad transfers,
// transfers naming another group, duplicate adopts after a lost ack, and
// transfers that lost the version race.
func TestShardAdoptVerdicts(t *testing.T) {
	clock := &fakeClock{t: t0}
	srvs := newGroupCluster(t, clock, 2, &mapDoer{}, nil)
	g2 := srvs["g2"]
	base := g2.router.mapP.Load()

	adopt := func(payload []byte) (int, string) {
		rec := httptest.NewRecorder()
		g2.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/shard/adopt", bytes.NewReader(payload)))
		return rec.Code, rec.Body.String()
	}

	// Garbage and a wrong-group assignment are refused before any state
	// changes.
	if code, body := adopt([]byte("junk")); code != http.StatusBadRequest {
		t.Fatalf("garbage transfer = %d (%s)", code, body)
	}
	g1Slot := g2.router.mapP.Load().OwnedSlots("g1")[0]
	toG1, err := base.WithOwner(g1Slot, "g1") // still g1's: not ours to adopt
	if err != nil {
		t.Fatal(err)
	}
	if code, body := adopt(encodeTransfer(g1Slot, toG1, nil)); code != http.StatusBadRequest {
		t.Fatalf("wrong-group transfer = %d (%s)", code, body)
	}

	// An empty transfer with a strictly newer map adopts cleanly.
	slot := base.OwnedSlots("g1")[1]
	v2, err := base.WithOwner(slot, "g2")
	if err != nil {
		t.Fatal(err)
	}
	code, body := adopt(encodeTransfer(slot, v2, nil))
	if code != http.StatusOK || !strings.Contains(body, `"adopted":true`) {
		t.Fatalf("clean adopt = %d (%s)", code, body)
	}

	// The same transfer again is the lost-ack retry: acknowledged
	// idempotently, nothing re-adopted.
	code, body = adopt(encodeTransfer(slot, v2, nil))
	if code != http.StatusOK || !strings.Contains(body, `"adopted":false`) {
		t.Fatalf("duplicate adopt = %d (%s)", code, body)
	}

	// A transfer whose map lost the version race — the slot has since moved
	// back to g1 under a newer map — conflicts instead of regressing.
	v3, err := v2.WithOwner(slot, "g1")
	if err != nil {
		t.Fatal(err)
	}
	if !g2.router.adopt(v3) {
		t.Fatal("g2 refused v3")
	}
	if code, body = adopt(encodeTransfer(slot, v2, nil)); code != http.StatusConflict {
		t.Fatalf("stale transfer = %d (%s)", code, body)
	}
}

// TestDecodeTransferRejectsDamage walks decodeTransfer's structural checks.
func TestDecodeTransferRejectsDamage(t *testing.T) {
	m, err := shardmap.New([]string{"g1", "g2"})
	if err != nil {
		t.Fatal(err)
	}
	slot := m.OwnedSlots("g2")[0]
	good := encodeTransfer(slot, m, nil)

	cases := []struct {
		name string
		b    []byte
	}{
		{"short", good[:6]},
		{"bad magic", append([]byte{9, 9, 9, 9}, good[4:]...)},
		{"truncated map", good[:len(good)-8]},
		{"trailing bytes", append(append([]byte(nil), good...), 1, 2, 3)},
	}
	bad := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(bad[4:6], shardmap.NumSlots)
	cases = append(cases, struct {
		name string
		b    []byte
	}{"slot out of range", bad})
	for _, tc := range cases {
		if _, _, _, err := decodeTransfer(tc.b); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// An entry whose id does not hash to the transfer's slot is refused —
	// that is the guard against a mis-addressed archive landing somewhere
	// the map will never route reads to.
	otherID := 1
	for ; shardmap.SlotOf(otherID) == slot; otherID++ {
	}
	framed := frameContainer(make([]byte, storeHeader2Size), 0)
	wrong := encodeTransfer(slot, m, []transferEntry{{id: int64(otherID), framed: framed}})
	if _, _, _, err := decodeTransfer(wrong); err == nil || !strings.Contains(err.Error(), "does not hash") {
		t.Fatalf("mis-addressed entry err = %v", err)
	}
}
