package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prorp/internal/repl"
	"prorp/internal/wal"
)

// mapDoer is the in-process replication network: requests are routed to a
// handler by URL host, so a primary/replica pair runs in one test without
// listeners. Rebinding a host models a node rebooting at the same address;
// an unbound host refuses connections.
type mapDoer struct {
	mu    sync.Mutex
	hosts map[string]http.Handler
}

func (d *mapDoer) bind(host string, h http.Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hosts == nil {
		d.hosts = make(map[string]http.Handler)
	}
	if h == nil {
		delete(d.hosts, host)
		return
	}
	d.hosts[host] = h
}

func (d *mapDoer) Do(req *http.Request) (*http.Response, error) {
	d.mu.Lock()
	h := d.hosts[req.URL.Host]
	d.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("connection refused: %s is down", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// napSleep is a real but capped sleep, so millisecond follower polls and
// backoff waits don't stretch the suite.
func napSleep(d time.Duration) {
	if d > time.Millisecond {
		d = time.Millisecond
	}
	time.Sleep(d)
}

// waitUntil polls cond until it holds or a generous deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// archive serializes a server's fleet to its canonical PRF1 bytes — the
// byte-equality oracle for follower convergence.
func archive(t *testing.T, s *Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.Fleet().WriteTo(&buf); err != nil {
		t.Fatalf("archiving fleet: %v", err)
	}
	return buf.Bytes()
}

// replConfig builds one node's Config rooted in dir: snapshots, journal,
// fake clock, capped sleeps. Tests layer the role bits on top.
func replConfig(dir string, clock interface{ Now() time.Time }) Config {
	return Config{
		Options:         testOptions(),
		Shards:          4,
		SnapshotPath:    filepath.Join(dir, "fleet.snap"),
		SnapshotEvery:   time.Hour, // snapshots driven explicitly
		WALDir:          filepath.Join(dir, "wal"),
		WALFsync:        wal.FsyncAlways,
		WALSegmentBytes: 2048,
		Now:             clock.Now,
		Sleep:           napSleep,
	}
}

// TestReplicaServesReadsRejectsWrites covers the role split: a replica
// streams the primary's journal, serves every read endpoint from the
// replicated state, and refuses mutations with 503 + Retry-After, counting
// them on /metrics. /healthz reports role and replication lag on both
// sides.
func TestReplicaServesReadsRejectsWrites(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	net := &mapDoer{}

	pcfg := replConfig(t.TempDir(), clock)
	pcfg.Logf = t.Logf
	primary, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	net.bind("a", primary)

	rcfg := replConfig(t.TempDir(), clock)
	rcfg.Role = repl.RoleReplica
	rcfg.PrimaryAddr = "http://a"
	rcfg.ReplDoer = net
	rcfg.ReplPollInterval = time.Millisecond
	rcfg.Logf = t.Logf
	replica, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	code, out := call(t, primary, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusCreated, out)
	clock.Set(t0.Add(10 * time.Hour))
	code, out = call(t, primary, "POST", "/v1/db/1/login", "")
	wantStatus(t, code, http.StatusOK, out)

	waitUntil(t, "replica to apply the stream", func() bool {
		return bytes.Equal(archive(t, primary), archive(t, replica))
	})

	// Reads are served from the replicated state.
	code, out = call(t, replica, "GET", "/v1/db/1", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["state"] != "resumed" {
		t.Fatalf("replica GET db 1 = %v", out)
	}
	code, out = call(t, replica, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)

	// Mutations are refused with 503 + Retry-After on every write route.
	writes := []struct{ method, path, body string }{
		{"POST", "/v1/db", `{"id":2}`},
		{"DELETE", "/v1/db/1", ""},
		{"POST", "/v1/db/1/login", ""},
		{"POST", "/v1/db/1/logout", ""},
		{"POST", "/v1/ops/resume", ""},
	}
	for _, wr := range writes {
		rec := httptest.NewRecorder()
		replica.ServeHTTP(rec, httptest.NewRequest(wr.method, wr.path, strings.NewReader(wr.body)))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s on replica = %d, want 503 (%s)", wr.method, wr.path, rec.Code, rec.Body.String())
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s %s on replica: no Retry-After header", wr.method, wr.path)
		}
	}
	// The rejected delete was not applied: the database is still served.
	code, out = call(t, replica, "GET", "/v1/db/1", "")
	wantStatus(t, code, http.StatusOK, out)

	// /healthz reports the role split and the lag gauges.
	code, out = call(t, replica, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["role"] != "replica" {
		t.Fatalf("replica healthz role = %v", out["role"])
	}
	if _, ok := out["replication_lag_records"]; !ok {
		t.Fatalf("replica healthz has no replication_lag_records: %v", out)
	}
	if _, ok := out["replication_lag_seconds"]; !ok {
		t.Fatalf("replica healthz has no replication_lag_seconds: %v", out)
	}
	code, out = call(t, primary, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["role"] != "primary" {
		t.Fatalf("primary healthz role = %v", out["role"])
	}

	// The rejections and the role land on /metrics.
	samples := scrape(t, replica)
	if n := sampleValue(t, samples, "prorp_repl_writes_rejected_total", nil); n != float64(len(writes)) {
		t.Fatalf("writes_rejected = %v, want %d", n, len(writes))
	}
	if n := sampleValue(t, samples, "prorp_repl_role", nil); n != 0 {
		t.Fatalf("replica role gauge = %v, want 0", n)
	}
	if n := sampleValue(t, samples, "prorp_repl_lag_records", nil); n != 0 {
		t.Fatalf("caught-up replica lag gauge = %v, want 0", n)
	}
	if n := sampleValue(t, scrape(t, primary), "prorp_repl_role", nil); n != 1 {
		t.Fatalf("primary role gauge = %v, want 1", n)
	}
}

// TestFollowerConvergence is the convergence acceptance: a replica that
// joins after the primary compacted its journal resyncs from the snapshot
// endpoint, streams the tail, and lands byte-identical to the primary's
// archive.
func TestFollowerConvergence(t *testing.T) {
	clock := &fakeClock{t: t0}
	net := &mapDoer{}

	pcfg := replConfig(t.TempDir(), clock)
	pcfg.Logf = t.Logf
	primary, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	net.bind("a", primary)

	// Build real state: three databases, three days of 09:00–17:00
	// activity each — enough history for predictions, physical pauses, and
	// pending wakes to be part of the archived state.
	day := 24 * time.Hour
	for id := 1; id <= 3; id++ {
		clock.Set(t0.Add(time.Duration(id) * time.Minute))
		code, out := call(t, primary, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, out)
	}
	for d := 0; d < 3; d++ {
		for id := 1; id <= 3; id++ {
			if d > 0 {
				clock.Set(t0.Add(time.Duration(d)*day + 9*time.Hour + time.Duration(id)*time.Minute))
				code, out := call(t, primary, "POST", fmt.Sprintf("/v1/db/%d/login", id), "")
				wantStatus(t, code, http.StatusOK, out)
			}
			clock.Set(t0.Add(time.Duration(d)*day + 17*time.Hour + time.Duration(id)*time.Minute))
			code, out := call(t, primary, "POST", fmt.Sprintf("/v1/db/%d/logout", id), "")
			wantStatus(t, code, http.StatusOK, out)
		}
	}

	// Snapshot now: the journal rotates and compacts below the boundary, so
	// a fresh replica's from-genesis cursor is below retained history and
	// its very first poll forces the 410 → snapshot-resync path.
	code, out := call(t, primary, "POST", "/v1/ops/snapshot", "")
	wantStatus(t, code, http.StatusOK, out)

	// Post-boundary tail the resynced replica must then stream.
	clock.Set(t0.Add(3*day + 9*time.Hour))
	code, out = call(t, primary, "POST", "/v1/db/1/login", "")
	wantStatus(t, code, http.StatusOK, out)

	rcfg := replConfig(t.TempDir(), clock)
	rcfg.Role = repl.RoleReplica
	rcfg.PrimaryAddr = "http://a"
	rcfg.ReplDoer = net
	rcfg.ReplPollInterval = time.Millisecond
	rcfg.Logf = t.Logf
	replica, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	// Byte equality can be observed between the fleet swap and the resync
	// counter increment, so the wait covers both.
	waitUntil(t, "replica to converge byte-identically", func() bool {
		return replica.followerRef().Stats().Resyncs >= 1 &&
			bytes.Equal(archive(t, primary), archive(t, replica))
	})

	// The convergence went through a snapshot resync, visibly on /metrics.
	samples := scrape(t, replica)
	if n := sampleValue(t, samples, "prorp_repl_follower_resyncs_total", nil); n < 1 {
		t.Fatalf("follower resyncs = %v, want >= 1", n)
	}

	// Replicated reads agree with the primary, state machine included.
	for id := 1; id <= 3; id++ {
		_, pout := call(t, primary, "GET", fmt.Sprintf("/v1/db/%d", id), "")
		_, rout := call(t, replica, "GET", fmt.Sprintf("/v1/db/%d", id), "")
		if pout["state"] != rout["state"] {
			t.Fatalf("db %d state: primary %v, replica %v", id, pout["state"], rout["state"])
		}
	}
}

// corruptingDoer flips one byte in every /v1/repl/snapshot response while
// armed — the in-flight version of the corrupt-archive cases the snapshot
// store tests cover on disk.
type corruptingDoer struct {
	inner   *mapDoer
	corrupt atomic.Bool
}

func (d *corruptingDoer) Do(req *http.Request) (*http.Response, error) {
	resp, err := d.inner.Do(req)
	if err != nil || !d.corrupt.Load() || !strings.HasSuffix(req.URL.Path, "/v1/repl/snapshot") {
		return resp, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		body[len(body)-1] ^= 0x01
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}

// TestReplicaRejectsCorruptSnapshot is the negative convergence case: a
// resync whose snapshot container is damaged in flight must fail the
// checksum and leave the local fleet untouched — and succeed as soon as
// the corruption clears.
func TestReplicaRejectsCorruptSnapshot(t *testing.T) {
	clock := &fakeClock{t: t0}
	net := &mapDoer{}

	pcfg := replConfig(t.TempDir(), clock)
	pcfg.Logf = t.Logf
	primary, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	net.bind("a", primary)

	for id := 1; id <= 2; id++ {
		clock.Set(t0.Add(time.Duration(id) * time.Minute))
		code, out := call(t, primary, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, out)
	}
	// Compact so the replica's only way in is the snapshot endpoint.
	code, out := call(t, primary, "POST", "/v1/ops/snapshot", "")
	wantStatus(t, code, http.StatusOK, out)

	cd := &corruptingDoer{inner: net}
	cd.corrupt.Store(true)

	rcfg := replConfig(t.TempDir(), clock)
	rcfg.Role = repl.RoleReplica
	rcfg.PrimaryAddr = "http://a"
	rcfg.ReplDoer = cd
	rcfg.ReplPollInterval = time.Millisecond
	replica, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	// Resync attempts keep failing the container checksum; none adopts.
	waitUntil(t, "corrupt resyncs to be refused", func() bool {
		return replica.followerRef().Stats().StreamErrors >= 3
	})
	if got := replica.followerRef().Stats().Resyncs; got != 0 {
		t.Fatalf("resyncs completed against a corrupt snapshot: %d", got)
	}
	if got := replica.Fleet().Size(); got != 0 {
		t.Fatalf("replica adopted corrupt state: %d databases", got)
	}
	code, out = call(t, replica, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusOK, out)
	if _, ok := out["replication_last_error"]; !ok {
		t.Fatalf("healthz hides the failing resync: %v", out)
	}

	// Corruption clears; the very same follower converges.
	cd.corrupt.Store(false)
	waitUntil(t, "replica to converge after the corruption clears", func() bool {
		return replica.followerRef().Stats().Resyncs >= 1 &&
			bytes.Equal(archive(t, primary), archive(t, replica))
	})
}

// TestPromoteAndFencing walks the failover control plane: promote is
// idempotent on a live primary, turns a replica into the primary of a new
// epoch, the fence endpoint closes the old primary's split-brain window,
// and fencing survives a restart via the repl-state file.
func TestPromoteAndFencing(t *testing.T) {
	clock := &fakeClock{t: t0}
	net := &mapDoer{}

	acfg := replConfig(t.TempDir(), clock)
	acfg.Logf = t.Logf
	a, err := New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	net.bind("a", a)

	bcfg := replConfig(t.TempDir(), clock)
	bcfg.Role = repl.RoleReplica
	bcfg.PrimaryAddr = "http://a"
	bcfg.ReplDoer = net
	bcfg.ReplPollInterval = time.Millisecond
	bcfg.Logf = t.Logf
	b, err := New(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	code, out := call(t, a, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusCreated, out)
	waitUntil(t, "replica to catch up", func() bool {
		return bytes.Equal(archive(t, a), archive(t, b))
	})

	// Promote on a live primary is a no-op report, not a new epoch.
	code, out = call(t, a, "POST", "/v1/repl/promote", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["promoted"] != false || out["epoch"] != float64(1) {
		t.Fatalf("promote on live primary = %v", out)
	}

	// Promote the replica: epoch 2, and it acknowledges writes.
	code, out = call(t, b, "POST", "/v1/repl/promote", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["promoted"] != true || out["epoch"] != float64(2) || out["role"] != "primary" {
		t.Fatalf("promote on replica = %v", out)
	}
	code, out = call(t, b, "POST", "/v1/db", `{"id":2}`)
	wantStatus(t, code, http.StatusCreated, out)

	// The old primary hasn't heard of epoch 2 and would still ack writes;
	// the fence endpoint closes that window.
	code, out = call(t, a, "POST", "/v1/repl/fence", `{"epoch":0}`)
	wantStatus(t, code, http.StatusBadRequest, out)
	code, out = call(t, a, "POST", "/v1/repl/fence", `{"epoch":2}`)
	wantStatus(t, code, http.StatusOK, out)
	if out["fenced"] != true || out["epoch"] != float64(2) {
		t.Fatalf("fence = %v", out)
	}
	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/db", strings.NewReader(`{"id":3}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write on fenced primary = %d, want 503", rec.Code)
	}
	// A fenced ex-primary that follows nobody is a zombie: it can neither
	// accept writes nor converge, so /healthz reports it unhealthy until
	// failover re-attaches it to the new primary.
	code, out = call(t, a, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusServiceUnavailable, out)
	if out["fenced"] != true || out["role"] != "primary" || out["status"] != "fenced" {
		t.Fatalf("fenced primary healthz = %v", out)
	}

	// A fenced ex-primary still serves the stream: that is how a follower
	// of the new epoch drains its acknowledged tail.
	rec = httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/repl/stream?after=0:0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stream on fenced primary = %d, want 200", rec.Code)
	}
	if got := rec.Header().Get(repl.HeaderEpoch); got != "2" {
		t.Fatalf("fenced primary stream epoch header = %q, want 2", got)
	}

	// Fencing survives a restart: the repl-state file carries it, so the
	// reboot cannot quietly un-demote the node.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a2, err := New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if got := a2.Node().Epoch(); got != 2 {
		t.Fatalf("rebooted ex-primary epoch = %d, want 2", got)
	}
	rec = httptest.NewRecorder()
	a2.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/db", strings.NewReader(`{"id":3}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write on rebooted fenced primary = %d, want 503", rec.Code)
	}
	code, out = call(t, a2, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusServiceUnavailable, out)
	if out["fenced"] != true || out["status"] != "fenced" {
		t.Fatalf("rebooted ex-primary healthz = %v", out)
	}
}
