package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prorp/internal/faults"
)

// TestChaosKillAndRestore is the chaos gate of the serving stack: 50
// seeded iterations, each driving a persistent server through concurrent
// traffic while the disk misbehaves (transient errors, partial writes,
// failed renames and fsyncs), then killing it, damaging the primary
// snapshot post-mortem (bit flips, deletion, truncation), and restarting.
// The invariant: zero lost databases — every database created before the
// first good snapshot is present and serviceable after kill-and-restore,
// no matter which faults fired. Runs under -race in CI.
func TestChaosKillAndRestore(t *testing.T) {
	const iterations = 50
	for seed := int64(0); seed < iterations; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			chaosIteration(t, seed)
		})
	}
}

// fire sends one request and ignores the outcome: chaos traffic does not
// assert per-call (faults make individual failures legitimate), only the
// end-state invariant matters.
func fire(s *Server, method, path, body string) {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	s.ServeHTTP(httptest.NewRecorder(), req)
}

func chaosIteration(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	inj := faults.NewInjector(seed)
	dir := t.TempDir()
	snap := filepath.Join(dir, "fleet.snap")
	clock := &fakeClock{t: t0}
	cfg := Config{
		Options:       testOptions(),
		Shards:        4,
		SnapshotPath:  snap,
		SnapshotEvery: time.Hour, // beats are driven explicitly
		FS:            faults.NewFaultFS(faults.OS, inj, funcClock{now: clock.Now, sleep: noSleep}),
		Now:           clock.Now,
		Sleep:         noSleep,
		Backoff: faults.Backoff{Attempts: 3, Base: time.Millisecond,
			Max: 4 * time.Millisecond, Factor: 2, Rand: inj.Rand()},
		DegradedAfter: 2,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}

	// Phase 1 — population and pattern building, disk healthy. Every
	// database exists before the first snapshot, so every snapshot in the
	// chain contains all of them: that is the invariant's anchor.
	k := 5 + rng.Intn(12)
	for id := 1; id <= k; id++ {
		fire(srv, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
	}
	day := 24 * time.Hour
	for d := 0; d < 3; d++ {
		clock.Set(t0.Add(time.Duration(d)*day + 9*time.Hour))
		for id := 1; id <= k; id++ {
			if d > 0 {
				fire(srv, "POST", fmt.Sprintf("/v1/db/%d/login", id), "")
			}
		}
		clock.Set(t0.Add(time.Duration(d)*day + 17*time.Hour))
		for id := 1; id <= k; id++ {
			fire(srv, "POST", fmt.Sprintf("/v1/db/%d/logout", id), "")
		}
	}
	// Two clean snapshots: primary and .bak both good, both hold all k.
	for i := 0; i < 2; i++ {
		if _, err := srv.writeSnapshot(); err != nil {
			t.Fatalf("clean snapshot %d: %v", i, err)
		}
	}

	// Phase 2 — chaos: the disk goes bad while concurrent traffic and
	// control-plane beats keep hammering the server.
	inj.FailProb("fs.createtemp", 0.25+0.5*rng.Float64(), nil)
	inj.FailProb("fs.rename", 0.25+0.5*rng.Float64(), nil)
	inj.FailProb("fs.sync", 0.3*rng.Float64(), nil)
	inj.PartialWrites("fs.write", 0.3*rng.Float64())
	inj.Latency("fs.write", time.Duration(rng.Intn(100))*time.Millisecond, 0.2)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed<<8 | int64(w)))
			for i := 0; i < 40; i++ {
				id := 1 + wrng.Intn(k)
				switch wrng.Intn(4) {
				case 0:
					fire(srv, "POST", fmt.Sprintf("/v1/db/%d/login", id), "")
				case 1:
					fire(srv, "POST", fmt.Sprintf("/v1/db/%d/logout", id), "")
				case 2:
					fire(srv, "GET", fmt.Sprintf("/v1/db/%d", id), "")
				case 3:
					fire(srv, "GET", "/v1/kpi", "")
				}
			}
		}(w)
	}
	for beat := 0; beat < 6; beat++ {
		clock.Set(t0.Add(3*day + time.Duration(9+beat)*time.Hour))
		fire(srv, "POST", "/v1/ops/resume", "")
		if rng.Intn(2) == 0 {
			fire(srv, "POST", "/v1/ops/snapshot", "") // may fail; that's the point
		}
	}
	wg.Wait()

	// Phase 3 — kill. Close under active faults: the final snapshot may or
	// may not land, mimicking a crash with a half-hearted disk.
	_ = srv.Close()

	// Post-mortem damage to the primary snapshot: the .bak chain is what
	// the restore path must save us with.
	if data, err := os.ReadFile(snap); err == nil {
		switch rng.Intn(4) {
		case 0: // leave the corpse as-is
		case 1: // bit rot
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
			os.WriteFile(snap, data, 0o644)
		case 2: // the file vanished (crash between the two renames)
			os.Remove(snap)
		case 3: // torn write: truncate to a random prefix
			os.WriteFile(snap, data[:rng.Intn(len(data))], 0o644)
		}
	}
	inj.HealAll()

	// Phase 4 — restore. Boot must succeed and every database must be
	// present and serviceable.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("restore after kill: %v", err)
	}
	defer srv2.Close()
	if got := srv2.Fleet().Size(); got != k {
		t.Fatalf("lost databases: restored %d of %d", got, k)
	}
	for id := 1; id <= k; id++ {
		if _, err := srv2.Fleet().State(id); err != nil {
			t.Fatalf("database %d lost after restore: %v", id, err)
		}
	}
	// The restored fleet serves: a control-plane beat and a fresh login.
	clock.Set(t0.Add(4*day + 9*time.Hour))
	fire(srv2, "POST", "/v1/ops/resume", "")
	req := httptest.NewRequest("POST", "/v1/db/1/login", strings.NewReader(""))
	rec := httptest.NewRecorder()
	srv2.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("restored server cannot serve logins: %d %s", rec.Code, rec.Body.String())
	}
}
