package controlplane

import (
	"testing"
	"testing/quick"
)

func TestMetadataStoreBasics(t *testing.T) {
	s := NewMetadataStore()
	if s.PausedCount() != 0 {
		t.Fatal("fresh store not empty")
	}
	s.SetPaused(1, 1000)
	s.SetPaused(2, 0)
	if s.PausedCount() != 2 {
		t.Fatalf("PausedCount = %d", s.PausedCount())
	}
	if v, ok := s.PredictedStart(1); !ok || v != 1000 {
		t.Fatalf("PredictedStart(1) = %d,%v", v, ok)
	}
	s.ClearPaused(1)
	if _, ok := s.PredictedStart(1); ok {
		t.Fatal("ClearPaused did not remove the entry")
	}
	s.ClearPaused(99) // no-op
}

func TestSelectDue(t *testing.T) {
	s := NewMetadataStore()
	s.SetPaused(1, 1000) // already due
	s.SetPaused(2, 1360) // due within now+k+period (1000+300+60)
	s.SetPaused(3, 1361) // just beyond the cutoff
	s.SetPaused(4, 0)    // no prediction: never prewarm
	s.SetPaused(5, 1200)

	got := s.SelectDue(1000, 300, 60)
	want := []int{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("SelectDue = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelectDue = %v, want %v", got, want)
		}
	}
}

func TestResumeOpRemovesSelected(t *testing.T) {
	s := NewMetadataStore()
	s.SetPaused(1, 500)
	s.SetPaused(2, 99999)
	cfg := DefaultConfig()
	got := s.ResumeOp(cfg, 400)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("ResumeOp = %v, want [1]", got)
	}
	if _, ok := s.PredictedStart(1); ok {
		t.Fatal("selected entry not removed")
	}
	if _, ok := s.PredictedStart(2); !ok {
		t.Fatal("unselected entry removed")
	}
	// A second iteration selects nothing new.
	if got := s.ResumeOp(cfg, 460); len(got) != 0 {
		t.Fatalf("second ResumeOp = %v, want empty", got)
	}
}

func TestResumeOpRespectsCap(t *testing.T) {
	s := NewMetadataStore()
	for i := 0; i < 250; i++ {
		s.SetPaused(i, 500)
	}
	cfg := Config{OpPeriodSec: 60, PrewarmLeadSec: 300, MaxPrewarmsPerOp: 100}
	first := s.ResumeOp(cfg, 400)
	if len(first) != 100 {
		t.Fatalf("first op resumed %d, want 100", len(first))
	}
	// Overflow remains queued for the next iterations.
	second := s.ResumeOp(cfg, 460)
	third := s.ResumeOp(cfg, 520)
	if len(second) != 100 || len(third) != 50 {
		t.Fatalf("drain = %d,%d, want 100,50", len(second), len(third))
	}
	if s.PausedCount() != 0 {
		t.Fatalf("%d entries left after drain", s.PausedCount())
	}
}

func TestResumeOpUnlimitedCap(t *testing.T) {
	s := NewMetadataStore()
	for i := 0; i < 250; i++ {
		s.SetPaused(i, 500)
	}
	cfg := Config{OpPeriodSec: 60, PrewarmLeadSec: 300, MaxPrewarmsPerOp: 0}
	if got := s.ResumeOp(cfg, 400); len(got) != 250 {
		t.Fatalf("unlimited op resumed %d, want 250", len(got))
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{OpPeriodSec: 0, PrewarmLeadSec: 300},
		{OpPeriodSec: 60, PrewarmLeadSec: -1},
		{OpPeriodSec: 60, PrewarmLeadSec: 0, MaxPrewarmsPerOp: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunnerLifecycle(t *testing.T) {
	r := NewRunner(600)
	r.WorkflowStarted(1, 100, "resume")
	r.WorkflowStarted(2, 100, "pause")
	r.WorkflowStarted(3, 400, "resume")
	if r.InFlight() != 3 || r.PeakInFlight() != 3 {
		t.Fatalf("InFlight = %d, Peak = %d", r.InFlight(), r.PeakInFlight())
	}
	r.WorkflowFinished(2)
	if r.InFlight() != 2 {
		t.Fatal("finish not tracked")
	}
	// At t=700: workflow 1 is 600s old (stuck), workflow 3 is 300s old.
	mitigated := r.Sweep(700)
	if len(mitigated) != 1 || mitigated[0] != 1 {
		t.Fatalf("Sweep = %v, want [1]", mitigated)
	}
	if r.Mitigations != 1 {
		t.Fatalf("Mitigations = %d", r.Mitigations)
	}
	if r.InFlight() != 1 {
		t.Fatal("mitigated workflow still in flight")
	}
	// Peak is a high-water mark and survives completion.
	if r.PeakInFlight() != 3 {
		t.Fatal("peak changed after completions")
	}
}

func TestRunnerSweepEmptyAndIdempotent(t *testing.T) {
	r := NewRunner(600)
	if got := r.Sweep(1000); len(got) != 0 {
		t.Fatalf("Sweep on empty runner = %v", got)
	}
	r.WorkflowStarted(1, 0, "resume")
	r.Sweep(600)
	if got := r.Sweep(601); len(got) != 0 {
		t.Fatal("double mitigation")
	}
}

// Property: entries selected by SelectDue always satisfy the due predicate
// and unselected entries never do.
func TestQuickSelectDueCorrect(t *testing.T) {
	f := func(starts []uint32, now uint16, lead uint8, period uint8) bool {
		s := NewMetadataStore()
		for i, st := range starts {
			s.SetPaused(i, int64(st%100000))
		}
		n, l, p := int64(now), int64(lead), int64(period)+1
		due := s.SelectDue(n, l, p)
		dueSet := map[int]bool{}
		for _, db := range due {
			dueSet[db] = true
		}
		for i := range starts {
			start, _ := s.PredictedStart(i)
			want := start > 0 && start <= n+l+p
			if dueSet[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerIncidentEscalation(t *testing.T) {
	r := NewRunner(600)
	r.MitigationFailureProb = 0.5
	for i := 0; i < 400; i++ {
		r.WorkflowStarted(i, 0, "resume")
	}
	mitigated := r.Sweep(600)
	if r.Mitigations+r.Incidents != 400 {
		t.Fatalf("mitigations %d + incidents %d != 400", r.Mitigations, r.Incidents)
	}
	if r.Incidents < 120 || r.Incidents > 280 {
		t.Fatalf("incidents = %d of 400 at p=0.5", r.Incidents)
	}
	if len(mitigated) != r.Mitigations {
		t.Fatalf("returned %d mitigated, counter says %d", len(mitigated), r.Mitigations)
	}
	// Every stuck workflow drained, whichever path it took.
	if r.InFlight() != 0 {
		t.Fatalf("%d workflows still in flight", r.InFlight())
	}
}

func TestRunnerNoIncidentsByDefault(t *testing.T) {
	r := NewRunner(600)
	for i := 0; i < 50; i++ {
		r.WorkflowStarted(i, 0, "pause")
	}
	r.Sweep(600)
	if r.Incidents != 0 {
		t.Fatalf("default runner escalated %d incidents", r.Incidents)
	}
	if r.Mitigations != 50 {
		t.Fatalf("mitigations = %d, want 50", r.Mitigations)
	}
}
