// Package controlplane implements the region-level components of ProRP
// (Section 7 of the paper): the metadata store over physically paused
// databases (the paper's sys.databases view), the periodic proactive-resume
// operation of Algorithm 5, and the diagnostics-and-mitigation runner that
// watches the resume and pause queues.
package controlplane

import (
	"fmt"
	"sort"
)

// MetadataStore is the per-region record of physically paused databases and
// the start of their next predicted activity (Algorithm 1 line 31 writes
// it; Algorithm 5 reads it). A predicted start of 0 means "no prediction" —
// such databases are never proactively resumed.
type MetadataStore struct {
	predStart map[int]int64
}

// NewMetadataStore returns an empty store.
func NewMetadataStore() *MetadataStore {
	return &MetadataStore{predStart: make(map[int]int64)}
}

// SetPaused records that db physically paused with the given predicted
// next activity start (0 = none).
func (s *MetadataStore) SetPaused(db int, predStart int64) {
	s.predStart[db] = predStart
}

// ClearPaused removes db from the paused set (it resumed by any means).
func (s *MetadataStore) ClearPaused(db int) {
	delete(s.predStart, db)
}

// PausedCount reports how many databases are physically paused.
func (s *MetadataStore) PausedCount() int { return len(s.predStart) }

// PredictedStart returns the recorded prediction for db.
func (s *MetadataStore) PredictedStart(db int) (int64, bool) {
	v, ok := s.predStart[db]
	return v, ok
}

// SelectDue implements the SELECT of Algorithm 5: physically paused
// databases whose predicted activity starts within the k-th interval from
// now — concretely, 0 < start <= now + k + period, where period is the
// cadence of the proactive resume operation. Including already-due entries
// (start < now+k) catches predictions that became due between iterations,
// which the paper's one-minute cadence makes negligible but a slower
// cadence would miss. Results are sorted by database id for determinism.
func (s *MetadataStore) SelectDue(now, prewarmLeadSec, periodSec int64) []int {
	var due []int
	cutoff := now + prewarmLeadSec + periodSec
	for db, start := range s.predStart {
		if start > 0 && start <= cutoff {
			due = append(due, db)
		}
	}
	sort.Ints(due)
	return due
}

// Config tunes the region control plane.
type Config struct {
	// OpPeriodSec is the cadence of the proactive resume operation. The
	// paper evaluates 1-15 minutes (Figure 11) and deploys 1 minute.
	OpPeriodSec int64
	// PrewarmLeadSec is k: resources are resumed this long before the
	// predicted activity (Table 1 default: 5 minutes).
	PrewarmLeadSec int64
	// MaxPrewarmsPerOp caps how many databases one iteration resumes, the
	// scaling guardrail discussed with Figure 11 (about one hundred in
	// production). 0 means unlimited.
	MaxPrewarmsPerOp int
}

// DefaultConfig returns the production settings: 1-minute cadence, 5-minute
// pre-warm lead, 100 pre-warms per iteration.
func DefaultConfig() Config {
	return Config{OpPeriodSec: 60, PrewarmLeadSec: 300, MaxPrewarmsPerOp: 100}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.OpPeriodSec <= 0 {
		return fmt.Errorf("controlplane: op period %d s, want > 0", c.OpPeriodSec)
	}
	if c.PrewarmLeadSec < 0 {
		return fmt.Errorf("controlplane: negative prewarm lead")
	}
	if c.MaxPrewarmsPerOp < 0 {
		return fmt.Errorf("controlplane: negative prewarm cap")
	}
	return nil
}

// ResumeOp is one iteration of the proactive resume operation. It selects
// the due databases (respecting the per-iteration cap; the overflow stays
// in the store for the next iteration) and removes them from the metadata
// store. The caller pre-warms each returned database.
func (s *MetadataStore) ResumeOp(cfg Config, now int64) []int {
	due := s.SelectDue(now, cfg.PrewarmLeadSec, cfg.OpPeriodSec)
	if cfg.MaxPrewarmsPerOp > 0 && len(due) > cfg.MaxPrewarmsPerOp {
		due = due[:cfg.MaxPrewarmsPerOp]
	}
	for _, db := range due {
		delete(s.predStart, db)
	}
	return due
}

// Runner is the diagnostics-and-mitigation runner of Section 7: it watches
// the volume of in-flight resume and pause workflows and mitigates the ones
// that exceed the stuck threshold. "In rare cases, this automatic
// mitigation process times out or fails, incidents are triggered and
// resolved by an on-call engineer" — modelled by MitigationFailureProb and
// the Incidents counter.
type Runner struct {
	// StuckThresholdSec is how long a workflow may stay in flight before
	// the runner mitigates it.
	StuckThresholdSec int64
	// MitigationFailureProb is the probability a mitigation attempt fails
	// and escalates to an incident instead (0 in the default runner).
	MitigationFailureProb float64

	inflight map[int]workflow
	// Mitigations counts completed mitigations.
	Mitigations int
	// Incidents counts failed mitigations escalated to an on-call
	// engineer; the workflow is resolved manually (removed from the
	// queue) but counted separately.
	Incidents int
	// peak tracks the largest in-flight queue observed.
	peak int

	// failureSeq drives the deterministic failure injection.
	failureSeq uint64
}

type workflow struct {
	startedAt int64
	kind      string
}

// NewRunner returns a runner with the given stuck threshold.
func NewRunner(stuckThresholdSec int64) *Runner {
	return &Runner{
		StuckThresholdSec: stuckThresholdSec,
		inflight:          make(map[int]workflow),
	}
}

// WorkflowStarted records that a resume or pause workflow began for db.
func (r *Runner) WorkflowStarted(db int, now int64, kind string) {
	r.inflight[db] = workflow{startedAt: now, kind: kind}
	if len(r.inflight) > r.peak {
		r.peak = len(r.inflight)
	}
}

// WorkflowFinished records normal completion.
func (r *Runner) WorkflowFinished(db int) {
	delete(r.inflight, db)
}

// InFlight reports the current workflow queue length.
func (r *Runner) InFlight() int { return len(r.inflight) }

// PeakInFlight reports the largest queue observed.
func (r *Runner) PeakInFlight() int { return r.peak }

// Sweep mitigates every workflow in flight longer than the threshold and
// returns the mitigated database ids (sorted). With a non-zero
// MitigationFailureProb some mitigations fail and escalate to incidents
// (deterministically, via a seeded pseudo-random sequence); both paths
// drain the stuck workflow.
func (r *Runner) Sweep(now int64) []int {
	var stuck []int
	for db, wf := range r.inflight {
		if now-wf.startedAt >= r.StuckThresholdSec {
			stuck = append(stuck, db)
		}
	}
	sort.Ints(stuck)
	mitigated := stuck[:0]
	for _, db := range stuck {
		delete(r.inflight, db)
		if r.MitigationFailureProb > 0 && r.nextFloat() < r.MitigationFailureProb {
			r.Incidents++
			continue
		}
		r.Mitigations++
		mitigated = append(mitigated, db)
	}
	return mitigated
}

// nextFloat is a deterministic xorshift-based uniform draw in [0, 1).
func (r *Runner) nextFloat() float64 {
	r.failureSeq = r.failureSeq*6364136223846793005 + 1442695040888963407
	return float64(r.failureSeq>>11) / float64(1<<53)
}
