// Package breaker implements a generation-counted circuit breaker for
// inter-node HTTP paths.
//
// Every call a node makes to a peer — router proxy, scatter-gather
// fan-out, replication stream polls, election solicitation, migration
// ships — normally fails by timeout when the peer is hung or
// partitioned. Timeouts are the expensive failure mode: each request
// burns the full deadline, and a fan-out that waits on a dead group
// burns it once per request forever. The breaker converts that into an
// O(1) refusal: after Threshold consecutive transport failures to a
// host the breaker opens, and further calls to that host fail instantly
// with ErrOpen until Cooldown elapses, at which point a single probe is
// admitted (half-open). A successful probe re-closes the breaker; a
// failed one re-opens it for another cooldown.
//
// The state machine is generation-counted: every transition bumps a
// generation, Allow returns the generation a call was admitted under,
// and Report ignores outcomes carrying a stale generation. That makes
// the breaker safe under concurrency — a slow request that was admitted
// while closed cannot re-trip a breaker that has since opened, probed,
// and re-closed.
package breaker

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOpen is returned by Allow — and by a wrapped Doer — when the
// breaker refuses a call: the target host has failed enough consecutive
// calls that further attempts are rejected instantly instead of burning
// a timeout each.
var ErrOpen = errors.New("circuit breaker open")

// State is a breaker's position in the closed → open → half-open cycle.
type State int32

const (
	// Closed: calls flow; consecutive transport failures are counted.
	Closed State = iota
	// Open: calls are refused instantly until the cooldown elapses.
	Open
	// HalfOpen: one probe call is in flight; everything else is refused.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Defaults for zero-valued constructor arguments.
const (
	DefaultThreshold = 5
	DefaultCooldown  = 2 * time.Second
)

// Breaker is a single host's circuit breaker. The zero value is not
// usable; construct with New.
type Breaker struct {
	mu        sync.Mutex
	now       func() time.Time
	threshold int
	cooldown  time.Duration

	state    State
	gen      uint64
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // half-open: a probe is in flight
	probeAt  time.Time // when the in-flight probe was admitted

	trips      atomic.Uint64
	rejections atomic.Uint64
	probes     atomic.Uint64
	recoveries atomic.Uint64
}

// New builds a breaker that trips after threshold consecutive failures
// and admits a recovery probe every cooldown thereafter. Zero or
// negative arguments take the package defaults; a nil now uses the wall
// clock.
func New(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{now: now, threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a call may proceed. On admission it returns the
// generation the call was admitted under; the caller must hand that
// generation back to Report with the call's outcome. On refusal it
// returns ErrOpen.
func (b *Breaker) Allow() (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return b.gen, nil
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.rejections.Add(1)
			return 0, ErrOpen
		}
		// Cooldown elapsed: move to half-open and admit a single probe.
		b.state = HalfOpen
		return b.admitProbe(), nil
	default: // HalfOpen
		if b.probing && b.now().Sub(b.probeAt) < b.cooldown {
			b.rejections.Add(1)
			return 0, ErrOpen
		}
		// Either the previous probe's outcome never came back (its
		// caller dropped it) or its window lapsed; admit a fresh probe
		// under a new generation so the lost one can no longer report.
		return b.admitProbe(), nil
	}
}

// admitProbe starts a new half-open probe under a fresh generation.
// Caller holds b.mu.
func (b *Breaker) admitProbe() uint64 {
	b.gen++
	b.probing = true
	b.probeAt = b.now()
	b.probes.Add(1)
	return b.gen
}

// Report records the outcome of a call admitted by Allow. Outcomes
// carrying a stale generation — the state machine has transitioned
// since the call was admitted — are ignored, so a slow straggler can
// neither re-trip a recovered breaker nor re-close a re-opened one.
func (b *Breaker) Report(gen uint64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if gen != b.gen {
		return
	}
	switch b.state {
	case Closed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case HalfOpen:
		b.probing = false
		if ok {
			b.state = Closed
			b.gen++
			b.failures = 0
			b.recoveries.Add(1)
		} else {
			b.trip()
		}
	}
}

// trip opens the breaker. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.gen++
	b.failures = 0
	b.openedAt = b.now()
	b.probing = false
	b.trips.Add(1)
}

// State returns the breaker's current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats is a point-in-time aggregate over one breaker or a Group.
type Stats struct {
	Trips      uint64 // closed→open and half-open→open transitions
	Rejections uint64 // calls refused with ErrOpen
	Probes     uint64 // half-open probes admitted
	Recoveries uint64 // half-open→closed transitions
	Open       uint64 // breakers currently in the Open state
}

// Stats returns this breaker's counters.
func (b *Breaker) Stats() Stats {
	st := Stats{
		Trips:      b.trips.Load(),
		Rejections: b.rejections.Load(),
		Probes:     b.probes.Load(),
		Recoveries: b.recoveries.Load(),
	}
	if b.State() == Open {
		st.Open = 1
	}
	return st
}

// Group manages one breaker per target host, all sharing the same
// threshold and cooldown. Hosts are created lazily on first use.
type Group struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	hosts     map[string]*Breaker
}

// NewGroup builds a per-host breaker group. Argument semantics match New.
func NewGroup(threshold int, cooldown time.Duration, now func() time.Time) *Group {
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	return &Group{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		hosts:     make(map[string]*Breaker),
	}
}

// For returns the breaker guarding host, creating it on first use.
func (g *Group) For(host string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.hosts[host]
	if b == nil {
		b = New(g.threshold, g.cooldown, g.now)
		g.hosts[host] = b
	}
	return b
}

// Cooldown returns the group's recovery cooldown — the natural
// Retry-After for a rejection caused by an open breaker.
func (g *Group) Cooldown() time.Duration { return g.cooldown }

// Stats sums counters across every breaker in the group.
func (g *Group) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	var st Stats
	for _, b := range g.hosts {
		s := b.Stats()
		st.Trips += s.Trips
		st.Rejections += s.Rejections
		st.Probes += s.Probes
		st.Recoveries += s.Recoveries
		st.Open += s.Open
	}
	return st
}

// States returns each host's current state name, for health surfaces.
func (g *Group) States() map[string]string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]string, len(g.hosts))
	for host, b := range g.hosts {
		out[host] = b.State().String()
	}
	return out
}

// Doer is the minimal HTTP client surface the wrapper decorates —
// satisfied by *http.Client and by the fault-injecting doers in tests.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

type breakingDoer struct {
	inner Doer
	group *Group
}

// Wrap decorates an inter-node HTTP doer with per-host circuit
// breaking. A transport error counts as a failure; any HTTP response —
// even a 5xx — counts as success, because the breaker targets hung or
// partitioned peers, not peers answering with application errors.
func Wrap(inner Doer, g *Group) Doer {
	return &breakingDoer{inner: inner, group: g}
}

func (d *breakingDoer) Do(req *http.Request) (*http.Response, error) {
	b := d.group.For(req.URL.Host)
	gen, err := b.Allow()
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrOpen, req.URL.Host)
	}
	resp, err := d.inner.Do(req)
	b.Report(gen, err == nil)
	return resp, err
}
