package breaker

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// tickClock is a manual clock: Now returns the current instant and
// Advance moves it forward.
type tickClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTickClock() *tickClock {
	return &tickClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *tickClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// report runs one admitted call through the breaker with the given
// outcome, failing the test if the breaker refused it.
func report(t *testing.T, b *Breaker, ok bool) {
	t.Helper()
	gen, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow() refused in state %v: %v", b.State(), err)
	}
	b.Report(gen, ok)
}

// TestTripThreshold tables the closed-state failure counter: only
// `threshold` CONSECUTIVE failures trip the breaker; any intervening
// success resets the count.
func TestTripThreshold(t *testing.T) {
	cases := []struct {
		name      string
		threshold int
		outcomes  []bool // applied in order; false = transport failure
		want      State
	}{
		{"under threshold stays closed", 3, []bool{false, false}, Closed},
		{"at threshold trips", 3, []bool{false, false, false}, Open},
		{"success resets the streak", 3, []bool{false, false, true, false, false}, Closed},
		{"streak after reset still trips", 3, []bool{false, true, false, false, false}, Open},
		{"threshold one trips immediately", 1, []bool{false}, Open},
		{"all successes stay closed", 2, []bool{true, true, true, true}, Closed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newTickClock()
			b := New(tc.threshold, time.Second, clock.Now)
			for _, ok := range tc.outcomes {
				report(t, b, ok)
			}
			if got := b.State(); got != tc.want {
				t.Fatalf("state after %v = %v, want %v", tc.outcomes, got, tc.want)
			}
		})
	}
}

// TestOpenRejectsUntilCooldown verifies the O(1) refusal: an open
// breaker rejects instantly with ErrOpen until the cooldown elapses.
func TestOpenRejectsUntilCooldown(t *testing.T) {
	clock := newTickClock()
	b := New(2, 10*time.Second, clock.Now)
	report(t, b, false)
	report(t, b, false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	for i := 0; i < 5; i++ {
		clock.Advance(time.Second) // 5s total: still inside the cooldown
		if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
			t.Fatalf("Allow() during cooldown = %v, want ErrOpen", err)
		}
	}
	if got := b.Stats().Rejections; got != 5 {
		t.Fatalf("rejections = %d, want 5", got)
	}
	clock.Advance(5 * time.Second) // cooldown elapsed
	if _, err := b.Allow(); err != nil {
		t.Fatalf("Allow() after cooldown = %v, want probe admitted", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
}

// TestHalfOpenProbe tables the half-open single-probe protocol: exactly
// one probe is admitted per cooldown, its outcome decides the next
// state, and concurrent calls during the probe are refused.
func TestHalfOpenProbe(t *testing.T) {
	cases := []struct {
		name    string
		probeOK bool
		want    State
	}{
		{"successful probe re-closes", true, Closed},
		{"failed probe re-opens", false, Open},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newTickClock()
			b := New(1, time.Second, clock.Now)
			report(t, b, false) // trip
			clock.Advance(time.Second)

			gen, err := b.Allow()
			if err != nil {
				t.Fatalf("probe refused: %v", err)
			}
			// While the probe is in flight, everything else is refused.
			if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
				t.Fatalf("second call during probe = %v, want ErrOpen", err)
			}
			b.Report(gen, tc.probeOK)
			if got := b.State(); got != tc.want {
				t.Fatalf("state after probe(ok=%v) = %v, want %v", tc.probeOK, got, tc.want)
			}
			if tc.probeOK {
				if got := b.Stats().Recoveries; got != 1 {
					t.Fatalf("recoveries = %d, want 1", got)
				}
				// A recovered breaker admits traffic again.
				if _, err := b.Allow(); err != nil {
					t.Fatalf("Allow() after recovery = %v", err)
				}
			} else {
				if got := b.Stats().Trips; got != 2 {
					t.Fatalf("trips = %d, want 2 (initial + re-open)", got)
				}
			}
		})
	}
}

// TestHalfOpenProbeLost covers the dropped-probe escape hatch: if a
// probe's outcome never comes back, a fresh probe is admitted after
// another cooldown — under a NEW generation, so the lost probe's late
// report is ignored.
func TestHalfOpenProbeLost(t *testing.T) {
	clock := newTickClock()
	b := New(1, time.Second, clock.Now)
	report(t, b, false) // trip
	clock.Advance(time.Second)

	lostGen, err := b.Allow() // probe 1: its caller will vanish
	if err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	clock.Advance(time.Second) // probe window lapses with no Report

	gen2, err := b.Allow() // probe 2 admitted under a fresh generation
	if err != nil {
		t.Fatalf("replacement probe refused: %v", err)
	}
	if gen2 == lostGen {
		t.Fatalf("replacement probe reused generation %d", lostGen)
	}
	b.Report(lostGen, false) // the straggler finally fails — stale, ignored
	if b.State() != HalfOpen {
		t.Fatalf("stale probe report changed state to %v", b.State())
	}
	b.Report(gen2, true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after live probe succeeded", b.State())
	}
}

// TestGenerationReset tables stale-outcome handling: a call admitted
// under one generation cannot move a state machine that has since
// transitioned.
func TestGenerationReset(t *testing.T) {
	t.Run("stale failure cannot re-trip a recovered breaker", func(t *testing.T) {
		clock := newTickClock()
		b := New(1, time.Second, clock.Now)
		staleGen, _ := b.Allow() // admitted while closed, will be slow
		report(t, b, false)      // a faster call trips the breaker
		clock.Advance(time.Second)
		probeGen, err := b.Allow()
		if err != nil {
			t.Fatalf("probe refused: %v", err)
		}
		b.Report(probeGen, true) // recovered
		b.Report(staleGen, false)
		if b.State() != Closed {
			t.Fatalf("stale failure re-tripped: state = %v", b.State())
		}
	})
	t.Run("stale success cannot re-close a re-opened breaker", func(t *testing.T) {
		clock := newTickClock()
		b := New(1, time.Second, clock.Now)
		report(t, b, false) // trip
		clock.Advance(time.Second)
		probeGen, err := b.Allow()
		if err != nil {
			t.Fatalf("probe refused: %v", err)
		}
		b.Report(probeGen, false) // probe failed: re-opened, gen bumped
		b.Report(probeGen, true)  // duplicate/late success — stale, ignored
		if b.State() != Open {
			t.Fatalf("stale success re-closed: state = %v", b.State())
		}
	})
}

// TestGenerationResetUnderConcurrency hammers one breaker from many
// goroutines through trip/recover cycles under the race detector: the
// invariants are that Allow/Report never deadlock, panic, or corrupt
// the counters, and that the breaker ends recoverable.
func TestGenerationResetUnderConcurrency(t *testing.T) {
	clock := newTickClock()
	b := New(3, time.Millisecond, clock.Now)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				gen, err := b.Allow()
				if err != nil {
					continue
				}
				// Bursty outcomes — 8 failures then 8 successes per
				// goroutine — so trips and recoveries interleave even
				// without fine scheduler interleaving.
				b.Report(gen, (i/8)%2 == 1)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
		default:
			clock.Advance(time.Millisecond)
			continue
		}
		break
	}
	// Whatever state the storm left behind, the breaker must recover
	// with successes and an advancing clock.
	for i := 0; i < 10 && b.State() != Closed; i++ {
		clock.Advance(time.Millisecond)
		if gen, err := b.Allow(); err == nil {
			b.Report(gen, true)
		}
	}
	if b.State() != Closed {
		t.Fatalf("breaker stuck in %v after recovery attempts", b.State())
	}
	st := b.Stats()
	if st.Trips == 0 || st.Recoveries == 0 {
		t.Fatalf("storm exercised no transitions: %+v", st)
	}
}

// fakeDoer answers per-host from a script of outcomes.
type fakeDoer struct {
	mu    sync.Mutex
	fail  map[string]bool // host → currently failing?
	calls map[string]int
}

func (d *fakeDoer) Do(req *http.Request) (*http.Response, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.calls == nil {
		d.calls = make(map[string]int)
	}
	host := req.URL.Host
	d.calls[host]++
	if d.fail[host] {
		return nil, fmt.Errorf("dial %s: connection refused", host)
	}
	return &http.Response{StatusCode: 200, Body: io.NopCloser(strings.NewReader("ok"))}, nil
}

func (d *fakeDoer) setFail(host string, v bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fail == nil {
		d.fail = make(map[string]bool)
	}
	d.fail[host] = v
}

// TestWrapPerHost verifies the Doer decorator: failures to one host
// open only that host's breaker, ErrOpen short-circuits without hitting
// the inner doer, and recovery re-admits traffic.
func TestWrapPerHost(t *testing.T) {
	clock := newTickClock()
	g := NewGroup(2, time.Second, clock.Now)
	inner := &fakeDoer{}
	d := Wrap(inner, g)
	inner.setFail("bad", true)

	get := func(host string) error {
		req, _ := http.NewRequest("GET", "http://"+host+"/x", nil)
		resp, err := d.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		return err
	}

	for i := 0; i < 2; i++ {
		if err := get("bad"); err == nil {
			t.Fatal("want transport error from failing host")
		}
	}
	if st := g.For("bad").State(); st != Open {
		t.Fatalf("bad host breaker = %v, want open", st)
	}
	// Open breaker short-circuits: the inner doer is not called.
	before := inner.calls["bad"]
	if err := get("bad"); !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if inner.calls["bad"] != before {
		t.Fatal("open breaker still reached the inner doer")
	}
	// The healthy host is unaffected.
	if err := get("good"); err != nil {
		t.Fatalf("good host: %v", err)
	}
	if st := g.For("good").State(); st != Closed {
		t.Fatalf("good host breaker = %v, want closed", st)
	}
	// Host heals; after the cooldown one probe succeeds and re-closes.
	inner.setFail("bad", false)
	clock.Advance(time.Second)
	if err := get("bad"); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	if st := g.For("bad").State(); st != Closed {
		t.Fatalf("bad host breaker after recovery = %v, want closed", st)
	}
	stats := g.Stats()
	if stats.Trips != 1 || stats.Recoveries != 1 || stats.Rejections == 0 {
		t.Fatalf("group stats = %+v", stats)
	}
	states := g.States()
	if states["bad"] != "closed" || states["good"] != "closed" {
		t.Fatalf("states = %v", states)
	}
}
