package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a registry with fixed, deterministic contents —
// every metric shape the exposition writer emits.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("prorp_requests_total", "Requests served.", L("route", "/v1/db"), L("method", "POST"))
	c.Add(12)
	r.Counter("prorp_requests_total", "Requests served.", L("route", "/v1/kpi"), L("method", "GET")).Add(3)
	g := r.Gauge("prorp_fleet_databases", "Databases in the fleet.")
	g.Set(42)
	r.GaugeFunc("prorp_uptime_seconds", "Seconds since boot.", func() float64 { return 60.5 })
	h := r.Histogram("prorp_request_duration_seconds", "Request latency.", []float64{0.001, 0.01, 0.1}, L("route", "/v1/db"))
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)
	// Escaping paths: backslash, quote, newline in label values and help.
	r.Gauge("prorp_escape_check", "line one\nline \\two", L("path", `C:\tmp "x"`+"\n")).Set(1)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("writer output does not parse: %v\n%s", err, buf.String())
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	check := func(key string, want float64) {
		t.Helper()
		got, ok := byKey[key]
		if !ok {
			t.Fatalf("sample %q missing; have %v", key, byKey)
		}
		if got != want {
			t.Fatalf("sample %q = %v, want %v", key, got, want)
		}
	}
	check(Sample{Name: "prorp_requests_total", Labels: []Label{{"method", "POST"}, {"route", "/v1/db"}}}.Key(), 12)
	check(Sample{Name: "prorp_fleet_databases"}.Key(), 42)
	check(Sample{Name: "prorp_uptime_seconds"}.Key(), 60.5)
	check(Sample{Name: "prorp_request_duration_seconds_count", Labels: []Label{{"route", "/v1/db"}}}.Key(), 4)
	// Cumulative buckets: le=0.001 has 2, le=0.01 has 2, le=0.1 has 3, +Inf has 4.
	check(Sample{Name: "prorp_request_duration_seconds_bucket", Labels: []Label{{"le", "0.001"}, {"route", "/v1/db"}}}.Key(), 2)
	check(Sample{Name: "prorp_request_duration_seconds_bucket", Labels: []Label{{"le", "0.1"}, {"route", "/v1/db"}}}.Key(), 3)
	check(Sample{Name: "prorp_request_duration_seconds_bucket", Labels: []Label{{"le", "+Inf"}, {"route", "/v1/db"}}}.Key(), 4)
	// The escaped label value survives the round trip byte for byte.
	esc := Sample{Name: "prorp_escape_check", Labels: []Label{{"path", `C:\tmp "x"` + "\n"}}}
	check(esc.Key(), 1)
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := map[string]string{
		"metric name starting with digit": `2bad 1`,
		"metric name with dash":           `bad-name 1`,
		"label name starting with digit":  `ok{2bad="v"} 1`,
		"label name with colon":           `ok{a:b="v"} 1`,
		"unterminated quote":              `ok{a="v} 1`,
		"unterminated label block":        `ok{a="v"`,
		"missing equals":                  `ok{a} 1`,
		"unknown escape":                  `ok{a="\q"} 1`,
		"dangling escape":                 `ok{a="\`,
		"missing value":                   `ok{a="v"}`,
		"unparsable value":                `ok{a="v"} forty`,
		"trailing tokens":                 `ok 1 2 3`,
		"malformed HELP":                  "# HELP 2bad text",
		"malformed TYPE name":             "# TYPE 2bad counter",
		"malformed TYPE kind":             "# TYPE ok sandwich",
		"reserved label name":             `ok{__name__="v"} 1`,
	}
	for name, line := range bad {
		if _, err := ParseExposition(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: ParseExposition(%q) accepted malformed input", name, line)
		}
	}
	good := []string{
		"# arbitrary comment\nok 1\n",
		`ok{le="+Inf"} 3` + "\n", // histogram bucket label
		"ok 1.5e-3\n",
		"ok +Inf\n",
		"with:colon 1\n",
	}
	for _, in := range good {
		if _, err := ParseExposition(strings.NewReader(in)); err != nil {
			t.Errorf("ParseExposition(%q) rejected well-formed input: %v", in, err)
		}
	}
}
