package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to a metric series. Label names
// must match [a-zA-Z_][a-zA-Z0-9_]*; values may be any UTF-8 string (they
// are escaped on exposition).
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// MetricType classifies a registered family for the TYPE line.
type MetricType int

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance of a family.
type series struct {
	labels []Label // sorted by name
	key    string

	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	counterFunc func() uint64
	gaugeFunc   func() float64
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	typ    MetricType
	order  []string // series keys in registration order
	series map[string]*series
}

// Registry is a named-metric registry with Prometheus text-format
// exposition. Get-or-create constructors make re-registration of the same
// name+labels return the existing metric, so instrumented packages don't
// coordinate. All methods are safe for concurrent use, and all are no-ops
// (returning nil metrics, which are themselves no-ops) on a nil *Registry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // family names in registration order
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// ValidMetricName reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// ValidLabelName reports whether s is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]*. Names beginning "__" are reserved.
func ValidLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// seriesKey canonicalizes a sorted label set.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return b.String()
}

// getOrCreate finds or inserts the series for name+labels, panicking on
// invalid names or a type conflict — both are programmer errors caught the
// first time the instrumented path runs under test. init runs under the
// registry lock so first-use initialization of the series' metric cannot
// race with a concurrent get-or-create of the same series.
func (r *Registry) getOrCreate(name, help string, typ MetricType, labels []Label, init func(*series)) *series {
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	for i, l := range ls {
		if !ValidLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Name, name))
		}
		if i > 0 && ls[i-1].Name == l.Name {
			panic(fmt.Sprintf("obs: duplicate label name %q on metric %q", l.Name, name))
		}
	}
	key := seriesKey(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = fam
		r.order = append(r.order, name)
	} else if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, typ, fam.typ))
	}
	sr, ok := fam.series[key]
	if !ok {
		sr = &series{labels: ls, key: key}
		fam.series[key] = sr
		fam.order = append(fam.order, key)
	}
	init(sr)
	return sr
}

// Counter returns the counter registered under name+labels, creating it on
// first use. Nil registry: returns nil (a no-op counter).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	sr := r.getOrCreate(name, help, TypeCounter, labels, func(sr *series) {
		if sr.counter == nil && sr.counterFunc == nil {
			sr.counter = &Counter{}
		}
	})
	return sr.counter
}

// CounterFunc registers a counter whose value is sampled from fn at
// exposition time — the bridge for counters owned elsewhere (FleetKPI,
// WAL metrics). Nil registry: no-op.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.getOrCreate(name, help, TypeCounter, labels, func(sr *series) {
		sr.counterFunc = fn
	})
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use. Nil registry: returns nil (a no-op gauge).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	sr := r.getOrCreate(name, help, TypeGauge, labels, func(sr *series) {
		if sr.gauge == nil && sr.gaugeFunc == nil {
			sr.gauge = &Gauge{}
		}
	})
	return sr.gauge
}

// GaugeFunc registers a gauge sampled from fn at exposition time. Nil
// registry: no-op.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.getOrCreate(name, help, TypeGauge, labels, func(sr *series) {
		sr.gaugeFunc = fn
	})
}

// Histogram returns the histogram registered under name+labels, creating
// it over bounds (nil = LatencyBuckets) on first use. Nil registry:
// returns nil (a no-op histogram).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	sr := r.getOrCreate(name, help, TypeHistogram, labels, func(sr *series) {
		if sr.hist == nil {
			sr.hist = NewHistogram(bounds)
		}
	})
	return sr.hist
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="x",b="y"} including extra appended last (used
// for histogram le). Empty set renders nothing.
func writeLabels(w io.Writer, labels []Label, extra ...Label) error {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label{}, labels...), extra...)
	}
	if len(all) == 0 {
		return nil
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Families appear in registration order, series in
// registration order within a family — stable across scrapes, so the
// output is golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		fam := r.families[name]
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, escapeHelp(fam.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.typ); err != nil {
			return err
		}
		for _, key := range fam.order {
			if err := writeSeries(w, fam, fam.series[key]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, fam *family, sr *series) error {
	switch fam.typ {
	case TypeCounter:
		v := float64(sr.counter.Value())
		if sr.counterFunc != nil {
			v = float64(sr.counterFunc())
		}
		return writeSample(w, fam.name, sr.labels, v)
	case TypeGauge:
		v := sr.gauge.Value()
		if sr.gaugeFunc != nil {
			v = sr.gaugeFunc()
		}
		return writeSample(w, fam.name, sr.labels, v)
	case TypeHistogram:
		counts, count, sum := sr.hist.snapshot()
		var cum uint64
		for i, n := range counts {
			cum += n
			le := "+Inf"
			if i < len(sr.hist.bounds) {
				le = formatValue(sr.hist.bounds[i])
			}
			if err := writeSampleExtra(w, fam.name+"_bucket", sr.labels, L("le", le), float64(cum)); err != nil {
				return err
			}
		}
		if err := writeSample(w, fam.name+"_sum", sr.labels, sum); err != nil {
			return err
		}
		return writeSample(w, fam.name+"_count", sr.labels, float64(count))
	}
	return nil
}

func writeSample(w io.Writer, name string, labels []Label, v float64) error {
	if _, err := io.WriteString(w, name); err != nil {
		return err
	}
	if err := writeLabels(w, labels); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, " %s\n", formatValue(v))
	return err
}

func writeSampleExtra(w io.Writer, name string, labels []Label, extra Label, v float64) error {
	if _, err := io.WriteString(w, name); err != nil {
		return err
	}
	if err := writeLabels(w, labels, extra); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, " %s\n", formatValue(v))
	return err
}
