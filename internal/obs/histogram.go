package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bucket layout for request-scale latencies:
// 100µs to 10s, roughly 2.5× apart — the range where HTTP handlers,
// fsyncs, and snapshot writes live.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// MicroBuckets is the bucket layout for in-memory hot paths (policy
// decisions, queue waits): 250ns to 25ms.
var MicroBuckets = []float64{
	2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
}

// Histogram is a fixed-bucket, lock-free histogram. Observations are two
// atomic adds plus one CAS for the sum; reads (quantiles, exposition) are
// point-in-time and may tear across concurrent writes by at most the
// in-flight observations — acceptable for monitoring. A nil *Histogram
// ignores writes and reports zeros.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// An empty or nil bounds slice means LatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value (for latencies: seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Inline binary search: sort.SearchFloat64s allocates nothing either,
	// but the loop keeps the call leaf-inlinable.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) by linear interpolation
// within the owning bucket, the standard Prometheus histogram_quantile
// estimate. Observations in the +Inf bucket clamp to the highest finite
// bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lower + (upper-lower)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot copies the bucket counts (non-cumulative), count, and sum.
func (h *Histogram) snapshot() (counts []uint64, count uint64, sum float64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.count.Load(), math.Float64frombits(h.sum.Load())
}
