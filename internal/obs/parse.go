package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its sorted label
// set, and the sample value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Key canonicalizes the sample's identity (name plus sorted labels).
func (s Sample) Key() string { return s.Name + seriesKey(s.Labels) }

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// ParseExposition parses Prometheus text exposition format (the subset
// WritePrometheus emits: HELP/TYPE comments and sample lines) and returns
// the samples in input order. It is strict where the format is strict —
// malformed metric names, label names, unterminated quotes, bad escapes,
// and unparsable values are errors — because its job is to prove the
// writer emits only well-formed output.
func ParseExposition(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var samples []Sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// checkComment validates # HELP / # TYPE lines; other comments pass.
func checkComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !ValidMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) < 4 || !ValidMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !ValidMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		s.Labels, rest, err = parseLabels(rest)
		if err != nil {
			return s, err
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	// One value token; an optional timestamp would follow a space, which
	// the writer never emits — reject trailing tokens outright.
	if strings.ContainsRune(rest, ' ') {
		return s, fmt.Errorf("trailing tokens after value in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	s.Value = v
	// Canonical identity: Key() must not depend on emission order.
	sortLabels(s.Labels)
	return s, nil
}

func sortLabels(ls []Label) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j-1].Name > ls[j].Name; j-- {
			ls[j-1], ls[j] = ls[j], ls[j-1]
		}
	}
}

// parseLabels consumes a {a="x",b="y"} block, returning the labels and
// the remainder of the line. The "le" label of histogram buckets is kept
// like any other label.
func parseLabels(in string) ([]Label, string, error) {
	if !strings.HasPrefix(in, "{") {
		return nil, in, fmt.Errorf("expected '{' at %q", in)
	}
	rest := in[1:]
	var labels []Label
	for {
		if rest == "" {
			return nil, rest, fmt.Errorf("unterminated label block in %q", in)
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, rest, fmt.Errorf("missing '=' in label block %q", in)
		}
		name := rest[:eq]
		if name != "le" && !ValidLabelName(name) {
			return nil, rest, fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		value, remainder, err := parseQuoted(rest)
		if err != nil {
			return nil, rest, err
		}
		labels = append(labels, Label{Name: name, Value: value})
		rest = remainder
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		}
	}
}

// parseQuoted consumes a leading "..." string with \\, \", and \n escapes.
func parseQuoted(in string) (string, string, error) {
	if !strings.HasPrefix(in, `"`) {
		return "", in, fmt.Errorf("expected '\"' at %q", in)
	}
	var b strings.Builder
	i := 1
	for i < len(in) {
		c := in[i]
		switch c {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			if i+1 >= len(in) {
				return "", in, fmt.Errorf("dangling escape in %q", in)
			}
			switch in[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", in, fmt.Errorf("unknown escape \\%c in %q", in[i+1], in)
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", in, fmt.Errorf("unterminated quote in %q", in)
}
