package obs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracing model: a root span opens a trace; child spans attach through the
// context.Context the root span was stored in. Every span records name,
// start, and duration; when the root span ends, the completed trace is
// offered to the tracer's bounded retention buffer, which keeps the
// slowest traces completed within the retention window — the ones worth
// looking at when p99 moves. Sampling is therefore *retention-side*:
// every request is traced (span bookkeeping is a few small allocations),
// but only the slow ones survive to GET /v1/traces.

const (
	// DefaultTraceCapacity bounds the retention buffer.
	DefaultTraceCapacity = 64
	// DefaultTraceMaxAge expires retained traces so one ancient outlier
	// doesn't squat the buffer forever.
	DefaultTraceMaxAge = 10 * time.Minute
	// maxSpansPerTrace bounds span records within one trace; overflow is
	// counted, not stored.
	maxSpansPerTrace = 64
)

// SpanRecord is one completed span inside a retained trace.
type SpanRecord struct {
	Name     string        `json:"name"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
}

// TraceRecord is one retained trace: the root span's identity plus every
// span that completed within it.
type TraceRecord struct {
	TraceID      string        `json:"trace_id"`
	Root         string        `json:"root"`
	Start        time.Time     `json:"start"`
	Duration     time.Duration `json:"duration_ns"`
	Spans        []SpanRecord  `json:"spans"`
	DroppedSpans int           `json:"dropped_spans,omitempty"`
}

// trace is the mutable under-construction state shared by a root span and
// its children.
type trace struct {
	tracer  *Tracer
	traceID uint64

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
}

// Span is one timed region. End completes it; a nil *Span ignores all
// calls, so disabled tracing costs one nil check.
type Span struct {
	tr       *trace
	name     string
	spanID   uint64
	parentID uint64
	start    time.Time
	root     bool
	ended    atomic.Bool
}

type ctxKey struct{}

// Tracer retains the slowest recent traces. A nil *Tracer disables
// tracing. All methods are safe for concurrent use.
type Tracer struct {
	capacity int
	maxAge   time.Duration
	now      func() time.Time
	ids      atomic.Uint64

	mu       sync.Mutex
	retained []TraceRecord
}

// NewTracer builds a tracer retaining up to capacity traces (0 =
// DefaultTraceCapacity) for maxAge (0 = DefaultTraceMaxAge).
func NewTracer(capacity int, maxAge time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if maxAge <= 0 {
		maxAge = DefaultTraceMaxAge
	}
	return &Tracer{capacity: capacity, maxAge: maxAge, now: time.Now}
}

// SetNow overrides the tracer's clock, for tests.
func (t *Tracer) SetNow(now func() time.Time) { t.now = now }

// Start opens a span named name. If ctx already carries a span, the new
// span joins its trace as a child; otherwise it opens a new trace as the
// root. The returned context carries the new span for further nesting.
// On a nil tracer, ctx is returned unchanged with a nil span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	sp := &Span{name: name, start: t.now(), spanID: t.nextID()}
	if parent != nil && parent.tr != nil {
		sp.tr = parent.tr
		sp.parentID = parent.spanID
	} else {
		sp.tr = &trace{tracer: t, traceID: t.nextID()}
		sp.root = true
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// nextID yields a process-unique 64-bit id; mixing in the clock keeps ids
// unique across restarts without a RNG on the span path.
func (t *Tracer) nextID() uint64 {
	return t.ids.Add(1)*0x9E3779B97F4A7C15 ^ uint64(t.now().UnixNano())
}

// End completes the span, recording it in its trace; ending the root span
// offers the whole trace to the retention buffer. End is idempotent.
func (s *Span) End() {
	if s == nil || s.tr == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	tr := s.tr
	end := tr.tracer.now()
	rec := SpanRecord{
		Name:     s.name,
		SpanID:   fmt.Sprintf("%016x", s.spanID),
		Start:    s.start,
		Duration: end.Sub(s.start),
	}
	if s.parentID != 0 {
		rec.ParentID = fmt.Sprintf("%016x", s.parentID)
	}
	tr.mu.Lock()
	if len(tr.spans) < maxSpansPerTrace {
		tr.spans = append(tr.spans, rec)
	} else {
		tr.dropped++
	}
	var done *TraceRecord
	if s.root {
		done = &TraceRecord{
			TraceID:      fmt.Sprintf("%016x", tr.traceID),
			Root:         s.name,
			Start:        s.start,
			Duration:     rec.Duration,
			Spans:        tr.spans,
			DroppedSpans: tr.dropped,
		}
		tr.spans = nil // the record owns the slice now
	}
	tr.mu.Unlock()
	if done != nil {
		tr.tracer.offer(*done)
	}
}

// offer admits a completed trace: expired entries are evicted first; a
// free slot takes the trace unconditionally; a full buffer keeps whichever
// of (new trace, current fastest retained trace) is slower.
func (t *Tracer) offer(rec TraceRecord) {
	cutoff := t.now().Add(-t.maxAge)
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.retained[:0]
	for _, r := range t.retained {
		if r.Start.Add(r.Duration).After(cutoff) {
			kept = append(kept, r)
		}
	}
	t.retained = kept
	if len(t.retained) < t.capacity {
		t.retained = append(t.retained, rec)
		return
	}
	minIdx := 0
	for i := range t.retained {
		if t.retained[i].Duration < t.retained[minIdx].Duration {
			minIdx = i
		}
	}
	if rec.Duration > t.retained[minIdx].Duration {
		t.retained[minIdx] = rec
	}
}

// Slowest returns the retained traces, slowest first, dropping entries
// older than the retention window.
func (t *Tracer) Slowest() []TraceRecord {
	if t == nil {
		return nil
	}
	cutoff := t.now().Add(-t.maxAge)
	t.mu.Lock()
	kept := t.retained[:0]
	for _, r := range t.retained {
		if r.Start.Add(r.Duration).After(cutoff) {
			kept = append(kept, r)
		}
	}
	t.retained = kept
	out := make([]TraceRecord, len(t.retained))
	copy(out, t.retained)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}
