package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should read zeros")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry should hand out nil metrics")
	}
	r.CounterFunc("x", "", func() uint64 { return 1 })
	r.GaugeFunc("x", "", func() float64 { return 1 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: %q, %v", sb.String(), err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	// 100 observations at ~5ms: all land in the (0.001, 0.01] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Sum(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("sum = %v, want 0.5", got)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0.001 || p50 > 0.01 {
		t.Fatalf("p50 = %v, want within (0.001, 0.01]", p50)
	}
	// Mixed distribution: 90 fast, 10 slow → p95 in the slow bucket.
	h2 := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h2.Observe(0.0005)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(0.05)
	}
	if p95 := h2.Quantile(0.95); p95 <= 0.01 || p95 > 0.1 {
		t.Fatalf("p95 = %v, want within (0.01, 0.1]", p95)
	}
	// Overflow clamps to the highest finite bound.
	h3 := NewHistogram([]float64{0.001, 1})
	h3.Observe(50)
	if got := h3.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %v, want 1 (clamped)", got)
	}
	if h3.Quantile(0.5) == 0 && h3.Count() == 1 {
		t.Fatal("quantile of populated histogram should not be 0")
	}
	// Empty histogram.
	if got := NewHistogram(nil).Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.002)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	if got := h.Sum(); math.Abs(got-goroutines*per*0.002) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, goroutines*per*0.002)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("prorp_test_total", "help", L("k", "v"))
	b := r.Counter("prorp_test_total", "other help ignored", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	c := r.Counter("prorp_test_total", "", L("k", "w"))
	if a == c {
		t.Fatal("different label value should return a distinct series")
	}
	// Label order must not matter.
	h1 := r.Histogram("prorp_h", "", nil, L("a", "1"), L("b", "2"))
	h2 := r.Histogram("prorp_h", "", nil, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order should not create a distinct series")
	}
}

func TestRegistryValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	mustPanic("bad metric name", func() { r.Counter("2bad", "") })
	mustPanic("empty metric name", func() { r.Counter("", "") })
	mustPanic("metric name with dash", func() { r.Gauge("bad-name", "") })
	mustPanic("bad label name", func() { r.Counter("ok_name", "", L("2bad", "v")) })
	mustPanic("reserved label name", func() { r.Counter("ok_name2", "", L("__x", "v")) })
	mustPanic("duplicate label", func() { r.Counter("ok_name3", "", L("a", "1"), L("a", "2")) })
	r.Counter("typed", "")
	mustPanic("type conflict", func() { r.Gauge("typed", "") })

	for name, want := range map[string]bool{
		"abc": true, "a:b": true, "_x9": true, "": false, "9a": false, "a-b": false, "a b": false,
	} {
		if got := ValidMetricName(name); got != want {
			t.Errorf("ValidMetricName(%q) = %v, want %v", name, got, want)
		}
	}
	for name, want := range map[string]bool{
		"abc": true, "_x": true, "a9": true, "": false, "9a": false, "a:b": false, "__r": false,
	} {
		if got := ValidLabelName(name); got != want {
			t.Errorf("ValidLabelName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := uint64(7)
	r.CounterFunc("prorp_cf_total", "sampled", func() uint64 { return n })
	r.GaugeFunc("prorp_gf", "sampled", func() float64 { return 2.5 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.Name] = s.Value
	}
	if got["prorp_cf_total"] != 7 {
		t.Fatalf("counter func sample = %v, want 7", got["prorp_cf_total"])
	}
	if got["prorp_gf"] != 2.5 {
		t.Fatalf("gauge func sample = %v, want 2.5", got["prorp_gf"])
	}
}
