package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic durations.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newFakeTracer(capacity int, maxAge time.Duration) (*Tracer, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	tr := NewTracer(capacity, maxAge)
	tr.SetNow(clk.now)
	return tr, clk
}

func TestTracerNesting(t *testing.T) {
	tr, clk := newFakeTracer(8, time.Hour)
	ctx, root := tr.Start(context.Background(), "GET /v1/db/{id}")
	clk.advance(time.Millisecond)
	_, child := tr.Start(ctx, "fleet.explain")
	clk.advance(2 * time.Millisecond)
	child.End()
	clk.advance(time.Millisecond)
	root.End()
	root.End() // idempotent

	got := tr.Slowest()
	if len(got) != 1 {
		t.Fatalf("retained %d traces, want 1", len(got))
	}
	rec := got[0]
	if rec.Root != "GET /v1/db/{id}" {
		t.Fatalf("root = %q", rec.Root)
	}
	if rec.Duration != 4*time.Millisecond {
		t.Fatalf("root duration = %v, want 4ms", rec.Duration)
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(rec.Spans))
	}
	// Child completed first, so it is recorded first.
	if rec.Spans[0].Name != "fleet.explain" || rec.Spans[0].Duration != 2*time.Millisecond {
		t.Fatalf("child span = %+v", rec.Spans[0])
	}
	if rec.Spans[0].ParentID != rec.Spans[1].SpanID {
		t.Fatalf("child parent id %q != root span id %q", rec.Spans[0].ParentID, rec.Spans[1].SpanID)
	}
	if rec.Spans[1].ParentID != "" {
		t.Fatalf("root span has parent %q", rec.Spans[1].ParentID)
	}
}

func TestTracerRetainsSlowest(t *testing.T) {
	tr, clk := newFakeTracer(2, time.Hour)
	run := func(name string, d time.Duration) {
		_, sp := tr.Start(context.Background(), name)
		clk.advance(d)
		sp.End()
	}
	run("fast", time.Millisecond)
	run("slow", 100*time.Millisecond)
	run("medium", 10*time.Millisecond) // evicts "fast" (the retained minimum)
	run("tiny", time.Microsecond)      // slower than nothing; dropped

	got := tr.Slowest()
	if len(got) != 2 {
		t.Fatalf("retained %d, want 2", len(got))
	}
	if got[0].Root != "slow" || got[1].Root != "medium" {
		t.Fatalf("retained %q, %q; want slow, medium", got[0].Root, got[1].Root)
	}
}

func TestTracerExpiry(t *testing.T) {
	tr, clk := newFakeTracer(8, time.Minute)
	_, sp := tr.Start(context.Background(), "old")
	clk.advance(5 * time.Millisecond)
	sp.End()
	if len(tr.Slowest()) != 1 {
		t.Fatal("fresh trace should be retained")
	}
	clk.advance(2 * time.Minute)
	if got := tr.Slowest(); len(got) != 0 {
		t.Fatalf("expired trace still retained: %+v", got)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "x")
	if ctx == nil {
		t.Fatal("nil tracer must return the context unchanged")
	}
	sp.End() // no-op
	if tr.Slowest() != nil {
		t.Fatal("nil tracer Slowest should be nil")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16, time.Hour)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.Start(context.Background(), "root")
				_, child := tr.Start(ctx, "child")
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	got := tr.Slowest()
	if len(got) == 0 || len(got) > 16 {
		t.Fatalf("retained %d traces, want 1..16", len(got))
	}
	for _, rec := range got {
		if len(rec.Spans) != 2 {
			t.Fatalf("trace %s has %d spans, want 2", rec.TraceID, len(rec.Spans))
		}
	}
}
