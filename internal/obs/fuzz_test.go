package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzExposition drives the exposition writer with adversarial label
// values, help strings, and sample values, then proves the strict parser
// accepts the output and recovers every sample byte for byte — the writer
// must never emit a line its own grammar rejects, no matter what UTF-8
// soup lands in a label value.
func FuzzExposition(f *testing.F) {
	f.Add("route", "/v1/db/{id}", "Requests served.", 12.5)
	f.Add("path", `C:\tmp "quoted"`, "line\nbreak", 0.0)
	f.Add("k", "", `back\slash`, -1.5)
	f.Add("le", "+Inf", "looks like a bucket", 3.0)
	f.Add("a", "\x00\xff\n\"\\", "\\n", 1e300)
	f.Fuzz(func(t *testing.T, labelName, labelValue, help string, value float64) {
		if math.IsNaN(value) || math.IsInf(value, 0) {
			// Inf round-trips but NaN != NaN; keep the oracle simple.
			value = 0
		}
		r := NewRegistry()
		var labels []Label
		if ValidLabelName(labelName) {
			labels = append(labels, L(labelName, labelValue))
		}
		r.Gauge("prorp_fuzz_gauge", help, labels...).Set(value)
		h := r.Histogram("prorp_fuzz_duration_seconds", help, []float64{0.001, 1}, labels...)
		h.Observe(math.Abs(value))

		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("writer error: %v", err)
		}
		samples, err := ParseExposition(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("writer emitted unparseable exposition: %v\n%s", err, buf.String())
		}
		want := Sample{Name: "prorp_fuzz_gauge", Labels: labels}
		var found bool
		for _, s := range samples {
			if s.Key() == want.Key() {
				found = true
				if s.Value != value {
					t.Fatalf("gauge value %v round-tripped to %v", value, s.Value)
				}
			}
		}
		if !found {
			t.Fatalf("gauge sample lost in round trip\n%s", buf.String())
		}
		// Every histogram series must expose _count == 1 observations.
		countKey := Sample{Name: "prorp_fuzz_duration_seconds_count", Labels: labels}.Key()
		for _, s := range samples {
			if s.Key() == countKey && s.Value != 1 {
				t.Fatalf("histogram count = %v, want 1", s.Value)
			}
		}
	})
}

// FuzzParseExposition hammers the parser with raw bytes: it must never
// panic, and whatever it accepts must re-serialize into something it
// accepts again (idempotent acceptance).
func FuzzParseExposition(f *testing.F) {
	f.Add("ok{a=\"v\"} 1\n")
	f.Add("# TYPE ok counter\nok 2\n")
	f.Add("x{le=\"+Inf\"} 3\n")
	f.Add("broken{a=\"v} 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		samples, err := ParseExposition(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, s := range samples {
			if !ValidMetricName(s.Name) {
				t.Fatalf("parser accepted invalid metric name %q", s.Name)
			}
			for _, l := range s.Labels {
				if l.Name != "le" && !ValidLabelName(l.Name) {
					t.Fatalf("parser accepted invalid label name %q", l.Name)
				}
			}
		}
	})
}
