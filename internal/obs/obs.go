// Package obs is the serving stack's dependency-free observability core:
// atomic counters and gauges, fixed-bucket lock-free latency histograms
// with queryable quantiles, a named-metric registry with Prometheus
// text-format exposition, and lightweight span tracing with a bounded
// buffer retaining the slowest recent traces.
//
// The package is deliberately tiny and allocation-averse: a counter is one
// atomic word, a histogram observation is two atomic adds plus a CAS, and
// nothing on a hot path takes a lock. Instrumentation seams are nil-safe —
// calling Observe/Add/Inc/Set on a nil metric, or Start on a nil Tracer,
// is a no-op — so instrumented code never branches on "is observability
// enabled".
//
// Metric naming follows the Prometheus conventions: `prorp_<subsystem>_
// <name>[_<unit>|_total]`, snake_case, base units (seconds, bytes).
// See DESIGN.md §8 for the full naming scheme and bucket layout.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter ignores writes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil *Gauge ignores writes.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (CAS loop; gauges are not write-hot).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reports the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
