package maintenance

import (
	"testing"
	"testing/quick"

	"prorp/internal/predictor"
)

const hour = int64(3600)

func TestOpValidate(t *testing.T) {
	now := int64(1000)
	if err := (Op{DB: 1, DurationSec: 600, DeadlineSec: now + 700}).Validate(now); err != nil {
		t.Fatal(err)
	}
	bad := []Op{
		{DB: 1, DurationSec: 0, DeadlineSec: now + 700},
		{DB: 1, DurationSec: -5, DeadlineSec: now + 700},
		{DB: 1, DurationSec: 600, DeadlineSec: now + 599},
	}
	for i, op := range bad {
		if err := op.Validate(now); err == nil {
			t.Errorf("case %d accepted: %+v", i, op)
		}
	}
}

func TestScheduleRunNowWhenResourcesUp(t *testing.T) {
	now := int64(10_000)
	op := Op{DB: 1, DurationSec: 1800, DeadlineSec: now + 24*hour}
	p, err := Schedule(op, now, true, predictor.Activity{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != RunNow || p.Start != now || !p.AvoidsResume {
		t.Fatalf("plan = %+v, want run-now at %d", p, now)
	}
}

func TestScheduleDuringPredictedActivity(t *testing.T) {
	now := int64(10_000)
	next := predictor.Activity{Start: now + 6*hour, End: now + 8*hour}
	op := Op{DB: 1, DurationSec: 1800, DeadlineSec: now + 24*hour}
	p, err := Schedule(op, now, false, next)
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != DuringPredictedActivity || p.Start != next.Start || !p.AvoidsResume {
		t.Fatalf("plan = %+v, want during predicted activity at %d", p, next.Start)
	}
}

func TestScheduleForcedResumeWhenNoPrediction(t *testing.T) {
	now := int64(10_000)
	op := Op{DB: 1, DurationSec: 1800, DeadlineSec: now + 24*hour}
	p, err := Schedule(op, now, false, predictor.Activity{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != ForcedResume || p.AvoidsResume {
		t.Fatalf("plan = %+v, want forced resume", p)
	}
	if p.Start != op.DeadlineSec-op.DurationSec {
		t.Fatalf("forced start = %d, want as late as allowed %d", p.Start, op.DeadlineSec-op.DurationSec)
	}
}

func TestScheduleForcedWhenPredictionMissesDeadline(t *testing.T) {
	now := int64(10_000)
	// Prediction exists but starts too late to finish by the deadline.
	next := predictor.Activity{Start: now + 23*hour + 3000, End: now + 24*hour}
	op := Op{DB: 1, DurationSec: 1800, DeadlineSec: now + 24*hour}
	p, err := Schedule(op, now, false, next)
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != ForcedResume {
		t.Fatalf("plan = %+v, want forced resume (prediction misses deadline)", p)
	}
}

func TestScheduleRejectsInvalidOp(t *testing.T) {
	if _, err := Schedule(Op{DB: 1, DurationSec: 0, DeadlineSec: 10}, 0, true, predictor.Activity{}); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestScheduleBatchMix(t *testing.T) {
	now := int64(100_000)
	views := map[int]DatabaseView{
		1: {ResourcesAvailable: true},
		2: {Next: predictor.Activity{Start: now + 4*hour, End: now + 5*hour}},
		3: {}, // paused, unpredictable
	}
	ops := []Op{
		{DB: 1, DurationSec: 600, DeadlineSec: now + 24*hour},
		{DB: 2, DurationSec: 600, DeadlineSec: now + 24*hour},
		{DB: 3, DurationSec: 600, DeadlineSec: now + 24*hour},
	}
	res, err := ScheduleBatch(ops, now, views, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ByStrategy[RunNow] != 1 || res.ByStrategy[DuringPredictedActivity] != 1 ||
		res.ByStrategy[ForcedResume] != 1 {
		t.Fatalf("strategies = %v", res.ByStrategy)
	}
	if got := res.AvoidedResumePercent(); got < 66 || got > 67 {
		t.Fatalf("AvoidedResumePercent = %.1f, want ~66.7", got)
	}
}

func TestScheduleBatchSpreadsForcedResumes(t *testing.T) {
	now := int64(720_000) // hour-aligned
	views := map[int]DatabaseView{}
	var ops []Op
	// Ten unpredictable databases, all with the same deadline: naive
	// planning would start all ten in the same hour.
	for i := 0; i < 10; i++ {
		views[i] = DatabaseView{}
		ops = append(ops, Op{DB: i, DurationSec: 600, DeadlineSec: now + 10*hour})
	}
	res, err := ScheduleBatch(ops, now, views, 2)
	if err != nil {
		t.Fatal(err)
	}
	perHour := map[int64]int{}
	for _, p := range res.Plans {
		if p.Strategy != ForcedResume {
			t.Fatalf("unexpected strategy %v", p.Strategy)
		}
		if p.Start < now || p.Start+600 > now+10*hour {
			t.Fatalf("plan start %d violates [now, deadline-duration]", p.Start)
		}
		perHour[p.Start/3600]++
	}
	for h, n := range perHour {
		if n > 2 {
			t.Fatalf("hour %d has %d forced resumes, cap 2", h, n)
		}
	}
}

func TestScheduleBatchUnknownDatabase(t *testing.T) {
	_, err := ScheduleBatch(
		[]Op{{DB: 9, DurationSec: 600, DeadlineSec: 100_000}},
		0, map[int]DatabaseView{}, 0)
	if err == nil {
		t.Fatal("unknown database accepted")
	}
}

func TestBatchResultEmpty(t *testing.T) {
	if (BatchResult{}).AvoidedResumePercent() != 0 {
		t.Fatal("empty batch has nonzero avoided percent")
	}
}

func TestStrategyString(t *testing.T) {
	for s := RunNow; s <= ForcedResume; s++ {
		if s.String() == "" {
			t.Errorf("Strategy(%d) empty", int(s))
		}
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy empty")
	}
}

// Property: every plan finishes by its deadline and never starts in the
// past, whatever the cap and deadlines.
func TestQuickPlansRespectDeadlines(t *testing.T) {
	f := func(seed int64, nOps uint8, cap uint8) bool {
		now := int64(1_000_000)
		views := map[int]DatabaseView{}
		var ops []Op
		rng := seed
		next := func() int64 { rng = rng*6364136223846793005 + 1; return (rng >> 33) & 0xFFFF }
		for i := 0; i < int(nOps%20)+1; i++ {
			dur := next()%3600 + 60
			deadline := now + dur + next()%(48*hour)
			views[i] = DatabaseView{ResourcesAvailable: next()%2 == 0}
			ops = append(ops, Op{DB: i, DurationSec: dur, DeadlineSec: deadline})
		}
		res, err := ScheduleBatch(ops, now, views, int(cap%5))
		if err != nil {
			return false
		}
		for i, p := range res.Plans {
			if p.Start < now {
				return false
			}
			if p.Start+ops[i].DurationSec > ops[i].DeadlineSec {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
