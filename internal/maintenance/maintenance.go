// Package maintenance implements the fourth future-work direction of the
// ProRP paper (Section 11): scheduling system maintenance operations —
// backups, software updates, stats refresh — when the database is
// predicted to be online, so the backend does not resume resources just to
// run maintenance (maintenance-triggered resumes are exactly the noise the
// paper's activity tracking filters out in Section 3.3).
package maintenance

import (
	"fmt"
	"sort"

	"prorp/internal/predictor"
)

// Strategy says how a maintenance window was chosen.
type Strategy int

const (
	// RunNow: resources are currently allocated; run immediately and
	// piggyback on them.
	RunNow Strategy = iota
	// DuringPredictedActivity: wait for the predicted next activity and
	// run alongside the customer workload's resources.
	DuringPredictedActivity
	// ForcedResume: no usable prediction before the deadline; resources
	// must be resumed solely for the maintenance operation.
	ForcedResume
)

func (s Strategy) String() string {
	switch s {
	case RunNow:
		return "run-now"
	case DuringPredictedActivity:
		return "during-predicted-activity"
	case ForcedResume:
		return "forced-resume"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Plan is a scheduled maintenance window.
type Plan struct {
	// Start is when the operation should begin (epoch seconds).
	Start int64
	// Strategy records how the window was chosen.
	Strategy Strategy
	// AvoidsResume reports whether the plan avoids a dedicated resume.
	AvoidsResume bool
}

// Op describes one pending maintenance operation.
type Op struct {
	// DB identifies the database.
	DB int
	// DurationSec is how long the operation runs.
	DurationSec int64
	// DeadlineSec is the latest allowed completion time (epoch seconds).
	DeadlineSec int64
}

// Validate checks the operation.
func (o Op) Validate(now int64) error {
	if o.DurationSec <= 0 {
		return fmt.Errorf("maintenance: op for db %d has duration %d", o.DB, o.DurationSec)
	}
	if o.DeadlineSec < now+o.DurationSec {
		return fmt.Errorf("maintenance: op for db %d cannot finish by deadline %d", o.DB, o.DeadlineSec)
	}
	return nil
}

// Schedule picks the window for one operation given the database's current
// resource availability and its next-activity prediction (zero when none).
func Schedule(op Op, now int64, resourcesAvailable bool, next predictor.Activity) (Plan, error) {
	if err := op.Validate(now); err != nil {
		return Plan{}, err
	}
	// Resources already up: run immediately, no extra resume.
	if resourcesAvailable {
		return Plan{Start: now, Strategy: RunNow, AvoidsResume: true}, nil
	}
	// Predicted activity that leaves room before the deadline: run then.
	if !next.IsZero() && next.Start >= now && next.Start+op.DurationSec <= op.DeadlineSec {
		return Plan{Start: next.Start, Strategy: DuringPredictedActivity, AvoidsResume: true}, nil
	}
	// Otherwise resume just for the operation, as late as allowed (the
	// prediction may still materialize before then and upgrade the plan).
	return Plan{
		Start:        op.DeadlineSec - op.DurationSec,
		Strategy:     ForcedResume,
		AvoidsResume: false,
	}, nil
}

// DatabaseView is what the batch planner needs to know per database.
type DatabaseView struct {
	ResourcesAvailable bool
	Next               predictor.Activity
}

// BatchResult summarizes a fleet-wide planning round.
type BatchResult struct {
	Plans []Plan
	// ByStrategy counts plans per strategy.
	ByStrategy map[Strategy]int
}

// AvoidedResumePercent is the share of operations that piggyback on
// customer-driven resources instead of forcing a resume.
func (b BatchResult) AvoidedResumePercent() float64 {
	if len(b.Plans) == 0 {
		return 0
	}
	avoided := 0
	for _, p := range b.Plans {
		if p.AvoidsResume {
			avoided++
		}
	}
	return 100 * float64(avoided) / float64(len(b.Plans))
}

// ScheduleBatch plans a set of operations against fleet state, spreading
// forced resumes so that no more than maxForcedPerHour of them start in
// any one hour — the same backend-load guardrail as Figure 11's
// per-iteration cap. Plans keep the input order; forced starts may be
// moved earlier (never later) to satisfy the cap.
func ScheduleBatch(ops []Op, now int64, views map[int]DatabaseView, maxForcedPerHour int) (BatchResult, error) {
	res := BatchResult{ByStrategy: make(map[Strategy]int)}
	var forcedIdx []int

	for _, op := range ops {
		view, ok := views[op.DB]
		if !ok {
			return BatchResult{}, fmt.Errorf("maintenance: no view for database %d", op.DB)
		}
		plan, err := Schedule(op, now, view.ResourcesAvailable, view.Next)
		if err != nil {
			return BatchResult{}, err
		}
		res.Plans = append(res.Plans, plan)
		if plan.Strategy == ForcedResume {
			forcedIdx = append(forcedIdx, len(res.Plans)-1)
		}
	}
	if maxForcedPerHour > 0 && len(forcedIdx) > 0 {
		// Sort forced plans by start, then push overflowing ones into
		// earlier hours (deadlines only bound the end).
		sort.Slice(forcedIdx, func(i, j int) bool {
			return res.Plans[forcedIdx[i]].Start < res.Plans[forcedIdx[j]].Start
		})
		perHour := map[int64]int{}
		for _, idx := range forcedIdx {
			p := &res.Plans[idx]
			hour := p.Start / 3600
			for perHour[hour] >= maxForcedPerHour && hour*3600 > now {
				hour--
			}
			perHour[hour]++
			if start := hour * 3600; start < p.Start {
				if start < now {
					start = now
				}
				p.Start = start
			}
		}
	}

	for _, p := range res.Plans {
		res.ByStrategy[p.Strategy]++
	}
	return res, nil
}
