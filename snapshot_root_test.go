package prorp

import (
	"bytes"
	"testing"
	"time"
)

// buildPatterned drives ten days of a two-session daily pattern and
// returns the fleet and database (physically paused with a prediction).
func buildPatterned(t *testing.T) (*Fleet, *Database) {
	t.Helper()
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	fleet, err := NewFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fleet.Create(1, t0.Add(9*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 10; d++ {
		base := t0.Add(time.Duration(d) * 24 * time.Hour)
		if d > 0 {
			fleet.Login(1, base.Add(9*time.Hour))
		}
		fleet.Idle(1, base.Add(12*time.Hour))
		fleet.Login(1, base.Add(15*time.Hour))
		fleet.Idle(1, base.Add(17*time.Hour))
	}
	if db.State() != PhysicallyPaused {
		t.Fatalf("setup: state %v", db.State())
	}
	return fleet, db
}

func TestSnapshotMovesAcrossFleets(t *testing.T) {
	_, db := buildPatterned(t)
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	// A new control plane (e.g. the destination node after a move)
	// restores the database and can pre-warm it on schedule.
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	fleet2, err := NewFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	restored, wakeAt, err := fleet2.Restore(1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !wakeAt.IsZero() {
		t.Fatalf("physically paused restore requested wake at %v", wakeAt)
	}
	if restored.State() != PhysicallyPaused {
		t.Fatalf("restored state %v", restored.State())
	}
	if fleet2.PausedCount() != 1 {
		t.Fatal("restored pause metadata missing")
	}
	if restored.HistoryTuples() != db.HistoryTuples() {
		t.Fatalf("history %d tuples, want %d", restored.HistoryTuples(), db.HistoryTuples())
	}

	due := t0.Add(10*24*time.Hour + 8*time.Hour + 55*time.Minute)
	got := fleet2.RunResumeOp(due)
	if len(got) != 1 || got[0].Decision.Event != EventPrewarm {
		t.Fatalf("restored fleet RunResumeOp = %+v", got)
	}
	d, _ := fleet2.Login(1, t0.Add(10*24*time.Hour+9*time.Hour))
	if d.Event != EventResumeWarm || !d.FromPrewarm {
		t.Fatalf("restored login = %+v", d)
	}
}

func TestRestoreLogicallyPausedReturnsWake(t *testing.T) {
	opts := DefaultOptions()
	db, err := NewDatabase(opts, 1, t0)
	if err != nil {
		t.Fatal(err)
	}
	d := db.Idle(t0.Add(time.Hour)) // logical pause, wake at +8h
	var buf bytes.Buffer
	db.WriteTo(&buf)
	restored, wakeAt, err := RestoreDatabase(opts, 1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.State() != LogicallyPaused {
		t.Fatalf("restored state %v", restored.State())
	}
	if !wakeAt.Equal(d.WakeAt) {
		t.Fatalf("wakeAt = %v, want the original timer %v", wakeAt, d.WakeAt)
	}
	// The restored wake behaves like the original one.
	got := restored.Wake(wakeAt)
	if got.Event != EventPhysicalPause {
		t.Fatalf("restored wake -> %v", got.Event)
	}
}

func TestFleetRestoreRejectsDuplicate(t *testing.T) {
	fleet, db := buildPatterned(t)
	var buf bytes.Buffer
	db.WriteTo(&buf)
	if _, _, err := fleet.Restore(1, &buf); err == nil {
		t.Fatal("duplicate restore accepted")
	}
}

func TestRestoreDatabaseRejectsGarbage(t *testing.T) {
	if _, _, err := RestoreDatabase(DefaultOptions(), 1, bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}
