// Command prorp-loadgen drives an open-loop, coordinated-omission-immune
// load test at a live prorp-serve deployment and scores the replies
// against the workload's ground truth: per-class latency quantiles
// measured from scheduled send times, the paper's QoS metric (fraction of
// first logins delayed by a resume), and its COGS proxy (provisioned
// database-seconds vs. an always-on baseline).
//
// The JSON report goes to stdout (or -out); a human-readable summary goes
// to stderr. 429/503 answers are honored per their Retry-After header and
// reported as shed, never as errors.
//
// Usage:
//
//	prorp-loadgen -targets http://localhost:8080 -duration 10s -rate 100
//	prorp-loadgen -targets http://g1:8080,http://g2:8080,http://g3:8080 \
//	    -dbs 50 -duration 30s -rate 500 -ramp 5s -seed 42 -out report.json
//	prorp-loadgen -targets http://localhost:8080 -mix 0.8,0.2  # history,kpi
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"prorp/internal/loadgen"
)

func main() {
	var (
		targets     = flag.String("targets", "http://localhost:8080", "comma-separated base URLs of the serving tier (one per group of a partitioned cluster); requests round-robin across them")
		duration    = flag.Duration("duration", 10*time.Second, "wall-clock length of the measured run")
		rate        = flag.Float64("rate", 100, "aggregate Poisson arrival rate (req/s) of the history/KPI read mix laid over the trace-driven logins (0 = trace ops only)")
		ramp        = flag.Duration("ramp", 0, "linear ramp of the Poisson rate from zero over the first part of the run (0 = no ramp)")
		mix         = flag.String("mix", "0.9,0.1", "history,kpi split of the Poisson mix as two comma-separated weights")
		seed        = flag.Int64("seed", 1, "seed for the workload traces and the arrival process; same seed = same schedule")
		dbs         = flag.Int("dbs", 20, "number of databases (one seeded activity trace each)")
		region      = flag.String("region", "EU1", "workload profile: EU1, EU2, US1, or US2")
		horizon     = flag.Duration("horizon", 48*time.Hour, "simulated trace horizon compressed onto -duration")
		workers     = flag.Int("workers", 16, "HTTP worker pool size (bounds concurrency, never paces arrivals)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
		minIdle     = flag.Duration("min-idle", 0, "idle-gap floor for QoS scoring: first logins after shorter (compressed) gaps are excluded from the denominator")
		sampleEvery = flag.Duration("sample-every", 500*time.Millisecond, "capacity sampler period for the COGS integral (scrapes /v1/kpi)")
		skipCreate  = flag.Bool("skip-create", false, "skip creating the databases (rerun against a warm server)")
		out         = flag.String("out", "", "write the JSON report to this file instead of stdout")
		quiet       = flag.Bool("quiet", false, "suppress progress lines on stderr")
	)
	flag.Parse()

	histW, kpiW, err := parseMix(*mix)
	if err != nil {
		log.Fatalf("prorp-loadgen: -mix: %v", err)
	}
	var targetList []string
	for _, tg := range strings.Split(*targets, ",") {
		if tg = strings.TrimSpace(tg); tg != "" {
			targetList = append(targetList, strings.TrimRight(tg, "/"))
		}
	}

	cfg := loadgen.RunConfig{
		Schedule: loadgen.ScheduleConfig{
			Seed:          *seed,
			Region:        *region,
			DBs:           *dbs,
			Horizon:       *horizon,
			Duration:      *duration,
			Rate:          *rate,
			Ramp:          *ramp,
			HistoryWeight: histW,
			KPIWeight:     kpiW,
		},
		Targets:     targetList,
		Workers:     *workers,
		Timeout:     *timeout,
		SampleEvery: *sampleEvery,
		MinIdle:     *minIdle,
		SkipCreate:  *skipCreate,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatalf("prorp-loadgen: %v", err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("prorp-loadgen: %v", err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatalf("prorp-loadgen: %v", err)
		}
	} else {
		os.Stdout.Write(data)
	}
	fmt.Fprintln(os.Stderr, rep.Summary())

	// Exit non-zero when the run itself was unhealthy: client-side errors
	// outside the shed classes mean the numbers are not trustworthy.
	if rep.TotalErrors() > 0 {
		os.Exit(1)
	}
}

// parseMix parses "history,kpi" weights, e.g. "0.9,0.1".
func parseMix(s string) (history, kpi float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want two comma-separated weights, got %q", s)
	}
	if history, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
		return 0, 0, err
	}
	if kpi, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
		return 0, 0, err
	}
	return history, kpi, nil
}
