// Command prorp-inspect evaluates the KPI metrics of Section 8 offline,
// from an exported telemetry log — the Cosmos-side analysis path of the
// paper. Logs are produced by `prorp-sim -telemetry <file>` or by
// prorp.SimulateWithTelemetry (and in a real deployment, by the online
// components themselves).
//
// Usage:
//
//	prorp-sim -telemetry run.csv -policy proactive -days 4
//	prorp-inspect -in run.csv -from-day 15 -days 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"prorp"
)

func main() {
	var (
		in      = flag.String("in", "-", "telemetry log file ('-' = stdin)")
		fromDay = flag.Int("from-day", 0, "evaluation window start, in days since the log epoch")
		days    = flag.Int("days", 365, "evaluation window length in days")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}

	evalFrom := time.Unix(int64(*fromDay)*86400, 0)
	evalTo := evalFrom.Add(time.Duration(*days) * 24 * time.Hour)
	rep, err := prorp.EvaluateTelemetry(r, evalFrom, evalTo)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(rep)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "prorp-inspect: "+format+"\n", args...)
	os.Exit(1)
}
