// Command prorp-inspect evaluates the KPI metrics of Section 8 offline,
// from an exported telemetry log — the Cosmos-side analysis path of the
// paper. Logs are produced by `prorp-sim -telemetry <file>` or by
// prorp.SimulateWithTelemetry (and in a real deployment, by the online
// components themselves).
//
// It also carries the journal debugging surface: `prorp-inspect wal`
// dumps and CRC-verifies the PRW1 segments of an event-journal directory,
// reporting each segment's header, frame count, and torn tail — the tool
// to reach for when a replica won't converge or a boot replay logs
// truncation.
//
// `prorp-inspect shardmap` is the partitioned-control-plane counterpart:
// it CRC-verifies a PRM1 shard-map file and prints the map version, the
// group table, and the slot ranges each group owns — the tool to reach for
// when two groups disagree about a slot or a node boots with a stale map.
//
// Usage:
//
//	prorp-sim -telemetry run.csv -policy proactive -days 4
//	prorp-inspect -in run.csv -from-day 15 -days 4
//	prorp-inspect wal -dir /var/lib/prorp/wal
//	prorp-inspect wal -dir /var/lib/prorp/wal -records 5
//	prorp-inspect shardmap /var/lib/prorp/shard.map
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"prorp"
	"prorp/internal/shardmap"
	"prorp/internal/wal"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "wal" {
		inspectWAL(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "shardmap" {
		inspectShardmap(os.Args[2:])
		return
	}

	var (
		in      = flag.String("in", "-", "telemetry log file ('-' = stdin)")
		fromDay = flag.Int("from-day", 0, "evaluation window start, in days since the log epoch")
		days    = flag.Int("days", 365, "evaluation window length in days")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}

	evalFrom := time.Unix(int64(*fromDay)*86400, 0)
	evalTo := evalFrom.Add(time.Duration(*days) * 24 * time.Hour)
	rep, err := prorp.EvaluateTelemetry(r, evalFrom, evalTo)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(rep)
}

// inspectWAL is the `wal` subcommand: walk a journal directory and report
// every segment's framing health. Exit status 1 means damage was found
// (torn tails, bad headers) — scriptable as a health probe.
func inspectWAL(args []string) {
	fs := flag.NewFlagSet("prorp-inspect wal", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "event journal directory (required)")
		records = fs.Int("records", 3, "sample records to print per segment (0 = none)")
	)
	fs.Parse(args)
	if *dir == "" {
		fatalf("wal: -dir is required")
	}

	reports, err := wal.InspectDir(nil, *dir, *records)
	if err != nil {
		fatalf("wal: %v", err)
	}
	if len(reports) == 0 {
		fmt.Printf("%s: no journal segments\n", *dir)
		return
	}

	damaged := 0
	totalRecords := 0
	for _, rep := range reports {
		fmt.Printf("%s  %d bytes\n", rep.Path, rep.SizeBytes)
		if !rep.HeaderOK {
			damaged++
			fmt.Printf("  header: BAD (not a PRW1 segment, or sequence mismatch)\n")
			continue
		}
		fmt.Printf("  header: ok (seq %d)\n", rep.Seq)
		fmt.Printf("  records: %d (CRC-32C verified)\n", rep.Records)
		totalRecords += rep.Records
		if rep.Torn {
			damaged++
			fmt.Printf("  torn tail: %d bytes past offset %d fail framing/CRC\n", rep.Truncated, rep.TornAt)
		}
		for _, rec := range rep.Sample {
			fmt.Printf("    %s id=%d at %s\n",
				rec.Type, rec.ID, time.Unix(rec.Unix, 0).UTC().Format(time.RFC3339))
		}
	}
	fmt.Printf("%d segments, %d records", len(reports), totalRecords)
	if damaged > 0 {
		fmt.Printf(", %d DAMAGED\n", damaged)
		os.Exit(1)
	}
	fmt.Println(", all clean")
}

// inspectShardmap is the `shardmap` subcommand: CRC-verify a PRM1 shard-map
// file and print its version, groups, and slot ownership. Exit status 1
// means the file is missing or damaged — scriptable as a health probe.
func inspectShardmap(args []string) {
	fs := flag.NewFlagSet("prorp-inspect shardmap", flag.ExitOnError)
	fs.Parse(args)
	path := fs.Arg(0)
	if path == "" {
		fatalf("shardmap: usage: prorp-inspect shardmap <path>")
	}

	m, size, err := shardmap.Inspect(nil, path)
	if err != nil {
		fatalf("shardmap: %s: %v", path, err)
	}

	fmt.Printf("%s  %d bytes\n", path, size)
	fmt.Printf("  crc: ok (PRM1)\n")
	fmt.Printf("  version: %d\n", m.Version())
	fmt.Printf("  groups: %d\n", len(m.Groups()))
	for _, g := range m.Groups() {
		fmt.Printf("    %-12s %d slots\n", g, len(m.OwnedSlots(g)))
	}
	fmt.Printf("  slot ranges (%d slots):\n", shardmap.NumSlots)
	for _, r := range m.Ranges() {
		fmt.Printf("    [%2d..%2d] -> %s\n", r.Start, r.End, r.Group)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "prorp-inspect: "+format+"\n", args...)
	os.Exit(1)
}
