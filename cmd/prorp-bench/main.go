// Command prorp-bench regenerates every table and figure of the ProRP
// paper's evaluation (Section 9) from the simulated region workloads.
//
// Usage:
//
//	prorp-bench                  # all figures at full scale
//	prorp-bench -fig 3,6,10      # a subset
//	prorp-bench -scale quick     # CI-sized run
//	prorp-bench -ablations       # the un-charted ablations as well
//	prorp-bench -dbs 1000        # override fleet size
//
// Output is the same rows/series the paper plots; EXPERIMENTS.md records
// the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prorp/internal/experiments"
)

func main() {
	var (
		figs      = flag.String("fig", "all", "comma-separated figure numbers (3,6,7,8,9,10,11,12) or 'all'")
		scaleName = flag.String("scale", "full", "experiment scale: full or quick")
		region    = flag.String("region", "EU1", "region profile for single-region figures")
		dbs       = flag.Int("dbs", 0, "override the number of databases")
		seed      = flag.Int64("seed", 0, "override the workload seed")
		ablations = flag.Bool("ablations", false, "also run the un-charted ablations")
		future    = flag.Bool("future", false, "also run the Section 11 future-work extensions")
		plot      = flag.Bool("plot", false, "append ASCII charts to figures that have them")
		csvDir    = flag.String("csv", "", "also write per-figure CSV files into this directory")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "full":
		scale = experiments.Full()
	case "quick":
		scale = experiments.Quick()
	default:
		fatalf("unknown scale %q (want full or quick)", *scaleName)
	}
	if *dbs > 0 {
		scale.Databases = *dbs
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	want := map[string]bool{}
	if *figs == "all" {
		for _, f := range []string{"3", "6", "7", "8", "9", "10", "11", "12"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	type renderer interface{ Render() string }
	type plotter interface{ Plot() string }
	type csver interface{ CSV() string }
	csvSeq := 0
	show := func(r renderer, err error) {
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(r.Render())
		if *plot {
			if p, ok := r.(plotter); ok {
				fmt.Println(p.Plot())
			}
		}
		if *csvDir != "" {
			if c, ok := r.(csver); ok {
				csvSeq++
				typ := strings.NewReplacer("*", "", ".", "-").Replace(fmt.Sprintf("%T", r))
				name := fmt.Sprintf("%s/%02d-%s.csv", *csvDir, csvSeq, typ)
				if err := os.WriteFile(name, []byte(c.CSV()), 0o644); err != nil {
					fatalf("%v", err)
				}
			}
		}
	}

	if want["3"] {
		show(must(experiments.Fig3(scale)))
	}
	if want["6"] {
		show(must(experiments.Fig6(scale, []string{"EU1", "EU2", "US1", "US2"})))
	}
	if want["7"] {
		days := 4
		if scale.EvalDays < days {
			days = scale.EvalDays
		}
		show(must(experiments.Fig7(scale, *region, days)))
	}
	if want["8"] {
		show(must(experiments.Fig8(scale, *region)))
	}
	if want["9"] {
		show(must(experiments.Fig9(scale, *region)))
	}
	if want["10"] {
		show(must(experiments.Fig10(scale, *region)))
	}
	if want["11"] {
		show(must(experiments.Fig11(scale, *region, []int{1, 5, 10, 15})))
	}
	if want["12"] {
		show(must(experiments.Fig12(scale, *region, []int{1, 5, 10, 15})))
	}

	if *ablations {
		histories := []int{7, 14, 21, 28}
		if scale.WarmupDays <= 28 {
			histories = []int{3, 5, 7}
		}
		show(must(experiments.AblationHistoryLength(scale, *region, histories)))
		show(must(experiments.AblationSeasonality(scale, *region)))
		show(must(experiments.AblationPolicyLadder(scale, *region)))
		show(must(experiments.Variance(scale, *region, []int64{1, 2, 3, 4, 5})))
	}

	if *future {
		show(must(experiments.FutureAutoscale(scale, *region)))
		show(must(experiments.FutureMaintenance(scale, *region)))
		histories := []int{7, 14, 28}
		if scale.WarmupDays <= 28 {
			histories = []int{3, 7}
		}
		show(must(experiments.Drift(scale, *region, 4, histories)))
	}
}

func must[T any](v T, err error) (T, error) { return v, err }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "prorp-bench: "+format+"\n", args...)
	os.Exit(1)
}
