// Command prorp-sim runs one region-scale simulation of serverless
// databases under the reactive baseline and the ProRP proactive policy and
// prints the KPI report of each (Section 8 of the paper).
//
// Usage:
//
//	prorp-sim -region EU1 -dbs 400 -days 6
//	prorp-sim -policy proactive -confidence 0.3 -window 4h
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"prorp"
)

func main() {
	var (
		region     = flag.String("region", "EU1", "region workload profile (EU1, EU2, US1, US2)")
		dbs        = flag.Int("dbs", 400, "number of databases")
		days       = flag.Int("days", 6, "evaluation days (after the history warm-up)")
		history    = flag.Int("history", 28, "history length h in days")
		seed       = flag.Int64("seed", 42, "workload seed")
		policyName = flag.String("policy", "both", "policy to run: reactive, proactive, or both")
		confidence = flag.Float64("confidence", 0.1, "confidence threshold c")
		window     = flag.Duration("window", 7*time.Hour, "window size w")
		slide      = flag.Duration("slide", 5*time.Minute, "window slide s")
		pause      = flag.Duration("pause", 7*time.Hour, "logical pause duration l")
		lead       = flag.Duration("lead", 5*time.Minute, "pre-warm lead k")
		weekly     = flag.Bool("weekly", false, "use weekly instead of daily seasonality")
		telemetry  = flag.String("telemetry", "", "export the run's telemetry log to this file (single-policy runs)")
		configPath = flag.String("config", "", "JSON options file (flags below still override its knobs)")
	)
	flag.Parse()

	baseOpts := prorp.DefaultOptions()
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prorp-sim: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &baseOpts); err != nil {
			fmt.Fprintf(os.Stderr, "prorp-sim: %v\n", err)
			os.Exit(1)
		}
	}

	// Flags override config-file knobs only when explicitly set.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	run := func(mode prorp.Mode) {
		opts := baseOpts
		opts.Mode = mode
		if setFlags["confidence"] || *configPath == "" {
			opts.Confidence = *confidence
		}
		if setFlags["window"] || *configPath == "" {
			opts.Window = *window
		}
		if setFlags["slide"] || *configPath == "" {
			opts.Slide = *slide
		}
		if setFlags["pause"] || *configPath == "" {
			opts.LogicalPause = *pause
		}
		if setFlags["lead"] || *configPath == "" {
			opts.PrewarmLead = *lead
		}
		if *weekly {
			opts.Seasonality = prorp.Weekly
		}
		cfg := prorp.SimulationConfig{
			Region:      *region,
			Databases:   *dbs,
			HistoryDays: *history,
			EvalDays:    *days,
			Seed:        *seed,
			Options:     &opts,
		}
		var rep prorp.Report
		var err error
		if *telemetry != "" {
			var f *os.File
			f, err = os.Create(*telemetry)
			if err == nil {
				rep, err = prorp.SimulateWithTelemetry(cfg, f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		} else {
			rep, err = prorp.Simulate(cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "prorp-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
	}

	switch *policyName {
	case "reactive":
		run(prorp.Reactive)
	case "proactive":
		run(prorp.Proactive)
	case "both":
		run(prorp.Reactive)
		run(prorp.Proactive)
	default:
		fmt.Fprintf(os.Stderr, "prorp-sim: unknown policy %q\n", *policyName)
		os.Exit(1)
	}
}
