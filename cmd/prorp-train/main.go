// Command prorp-train runs the offline training pipeline of Section 8 of
// the ProRP paper: it sweeps the prediction knobs (window size x confidence
// threshold) over a region workload, evaluates the KPI metrics of every
// configuration, and prints the grid plus the selected best middle ground
// between quality of service and operational cost efficiency.
//
// Usage:
//
//	prorp-train -region EU1 -dbs 200
//	prorp-train -windows 2,4,7 -confidences 0.1,0.3 -idle-weight 1.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"prorp/internal/cluster"
	"prorp/internal/controlplane"
	"prorp/internal/engine"
	"prorp/internal/policy"
	"prorp/internal/training"
	"prorp/internal/workload"
)

const day = int64(86400)

func main() {
	var (
		region      = flag.String("region", "EU1", "region workload profile")
		dbs         = flag.Int("dbs", 200, "number of databases")
		history     = flag.Int("history", 14, "history length h in days")
		evalDays    = flag.Int("days", 4, "evaluation days")
		seed        = flag.Int64("seed", 42, "workload seed")
		windowsCSV  = flag.String("windows", "1,2,4,7,8", "window sizes to sweep (hours)")
		confCSV     = flag.String("confidences", "0.1,0.2,0.4,0.6,0.8", "confidence thresholds to sweep")
		idleWeight  = flag.Float64("idle-weight", 1.0, "idle penalty weight of the score")
		quiet       = flag.Bool("best-only", false, "print only the selected configuration")
		sensitivity = flag.Bool("sensitivity", false, "run the knob-importance analysis instead of the grid")
		monthly     = flag.Int("monthly", 0, "run the deploy-measure-retrain loop for N periods instead of a single grid")
		driftAt     = flag.Int("drift-at", 0, "with -monthly: shift workload phases at the start of this period")
		driftHours  = flag.Int("drift-hours", 3, "with -monthly and -drift-at: phase shift in hours")
	)
	flag.Parse()

	windows, err := parseInts(*windowsCSV)
	if err != nil {
		fatalf("bad -windows: %v", err)
	}
	confidences, err := parseFloats(*confCSV)
	if err != nil {
		fatalf("bad -confidences: %v", err)
	}

	if *monthly > 0 {
		results, err := training.MonthlyLoop(training.MonthlyConfig{
			Region:        *region,
			Databases:     *dbs,
			PeriodDays:    *evalDays,
			Periods:       *monthly,
			HistoryDays:   *history,
			Seed:          *seed,
			DriftAtPeriod: *driftAt,
			DriftHours:    *driftHours,
			WindowHours:   windows,
			Confidences:   confidences,
			IdleWeight:    *idleWeight,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(training.RenderMonthly(results))
		return
	}

	prof, err := workload.Region(*region)
	if err != nil {
		fatalf("%v", err)
	}
	gen, err := workload.NewGenerator(*seed, prof)
	if err != nil {
		fatalf("%v", err)
	}
	warmup := int64(*history + 1)
	to := (warmup + int64(*evalDays)) * day
	traces := gen.Generate(*dbs, 0, to)

	pol := policy.DefaultConfig()
	pol.Predictor.HistoryDays = *history
	base := engine.Config{
		Policy:       pol,
		ControlPlane: controlplane.DefaultConfig(),
		Cluster:      cluster.DefaultConfig(*dbs),
		From:         0,
		EvalFrom:     warmup * day,
		To:           to,
		Seed:         *seed,
	}
	pipe, err := training.New(base, traces)
	if err != nil {
		fatalf("%v", err)
	}
	pipe.IdleWeight = *idleWeight

	if *sensitivity {
		impacts, err := pipe.Sensitivity(training.SensitivityRange{})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(training.RenderSensitivity(impacts))
		return
	}

	points, err := pipe.Grid(windows, confidences)
	if err != nil {
		fatalf("%v", err)
	}
	if !*quiet {
		fmt.Printf("training grid (%s, %d databases, %d eval days, idle weight %.2f)\n",
			*region, *dbs, *evalDays, *idleWeight)
		fmt.Printf("%10s %12s %10s %10s %10s\n", "window(h)", "confidence", "QoS", "idle", "score")
		for _, p := range points {
			fmt.Printf("%10d %12.2f %9.1f%% %9.2f%% %10.2f\n",
				p.WindowSec/3600, p.Confidence,
				p.Report.QoSPercent(), p.Report.IdlePercent(), p.Score(*idleWeight))
		}
	}
	best := pipe.Best(points)
	fmt.Printf("selected: window=%dh confidence=%.2f (QoS %.1f%%, idle %.2f%%, score %.2f)\n",
		best.WindowSec/3600, best.Confidence,
		best.Report.QoSPercent(), best.Report.IdlePercent(), best.Score(*idleWeight))
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "prorp-train: "+format+"\n", args...)
	os.Exit(1)
}
