// Command prorp-serve runs the ProRP online serving runtime: a sharded
// fleet engine behind an HTTP API, driven by wall-clock time, with a
// background proactive-resume ticker (Algorithm 5), per-database wake-up
// delivery, periodic snapshot persistence, restore-on-boot, and graceful
// shutdown (drain, final snapshot) on SIGINT/SIGTERM.
//
// Usage:
//
//	prorp-serve -addr :8080 -snapshot /var/lib/prorp/fleet.snap
//	prorp-serve -shards 64 -config opts.json -snapshot-every 30s
//	prorp-serve -debug-addr 127.0.0.1:6060   # pprof on a separate listener
//	prorp-serve -role replica -primary-addr http://primary:8080 \
//	    -wal-dir /var/lib/prorp/wal -snapshot /var/lib/prorp/fleet.snap
//	prorp-serve -group g1 -groups g2=http://g2:8080,g3=http://g3:8080 \
//	    -shardmap /var/lib/prorp/shard.map   # partitioned control plane
//	prorp-serve -version
//
// See internal/server for the endpoint list, and "Running as a service" in
// README.md for curl examples.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"prorp"
	"prorp/internal/faults"
	"prorp/internal/repl"
	"prorp/internal/server"
	"prorp/internal/wal"
)

// version renders the build's identity from the Go module metadata stamped
// by `go build` — no ldflags plumbing to get stale.
func version() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "prorp-serve (no build info)"
	}
	v := info.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	out := fmt.Sprintf("prorp-serve %s", v)
	if rev != "" {
		out += fmt.Sprintf(" (%s%s)", rev, dirty)
	}
	return out + " " + info.GoVersion
}

// parseGroupPeers parses the -groups flag: comma-separated name=base-url
// pairs naming every OTHER group's primary.
func parseGroupPeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	peers := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad pair %q, want name=base-url", pair)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("duplicate group %q", name)
		}
		peers[name] = strings.TrimRight(addr, "/")
	}
	return peers, nil
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		debugAddr     = flag.String("debug-addr", "", "debug listen address for net/http/pprof (empty = pprof disabled); keep it off any public interface")
		showVersion   = flag.Bool("version", false, "print version and exit")
		shards        = flag.Int("shards", 0, "fleet stripe count (0 = default)")
		snapshotPath  = flag.String("snapshot", "", "snapshot file: restored on boot, rewritten periodically and on shutdown")
		snapshotEvery = flag.Duration("snapshot-every", time.Minute, "periodic snapshot cadence")
		configPath    = flag.String("config", "", "JSON options file (prorp.Options; default Table 1 knobs)")
		retryAttempts = flag.Int("retry-attempts", 5, "attempts per transient I/O failure (snapshots, prewarm/wake hooks)")
		retryBase     = flag.Duration("retry-base", 50*time.Millisecond, "initial retry backoff delay")
		retryMax      = flag.Duration("retry-max", 2*time.Second, "retry backoff delay cap")
		degradedAfter = flag.Int("degraded-after", 3, "consecutive snapshot failures before degraded mode (serve traffic, skip snapshots, report unhealthy)")
		walDir        = flag.String("wal-dir", "", "event journal directory: every mutation is journaled there before it is acknowledged, replayed on boot, compacted on snapshot (empty = journal disabled)")
		walFsync      = flag.String("wal-fsync", "always", "journal durability policy: always (fsync per record), batch (group commit), off")
		walSegBytes   = flag.Int64("wal-segment-bytes", 0, "journal segment rotation size in bytes (0 = default 4 MiB)")
		walBatchEvery = flag.Duration("wal-batch-interval", 0, "group-commit window for -wal-fsync=batch (0 = default 2ms)")
		role          = flag.String("role", "primary", "replication role: primary (accept writes, serve the stream) or replica (pull the primary's journal, serve reads, reject writes; requires -primary-addr and -wal-dir)")
		primaryAddr   = flag.String("primary-addr", "", "primary's base URL for -role=replica (e.g. http://primary:8080)")
		replPoll      = flag.Duration("repl-poll-interval", 0, "follower poll cadence while caught up (0 = default 250ms)")
		replBatch     = flag.Int("repl-batch-bytes", 0, "max replication stream batch size in bytes (0 = default 256 KiB)")
		leaseTTL      = flag.Duration("lease-ttl", 0, "primary-lease TTL: the primary heartbeats a lease of this length to its followers, and a follower whose lease lapses stands for election (0 = self-healing failover disabled; requires -repl-peers and -repl-self)")
		electionTO    = flag.Duration("election-timeout", 0, "base election timeout: a candidate waits this plus a random fraction of it after lease lapse before standing (0 = -lease-ttl)")
		quorumAcks    = flag.Int("quorum-acks", 0, "replica acks each write waits for after the local fsync before acknowledging; timeout refuses with 503, never downgrades silently (0 = async replication; requires -wal-dir)")
		quorumTO      = flag.Duration("quorum-timeout", 0, "deadline for one quorum-acked replication wait (0 = default 5s)")
		replPeers     = flag.String("repl-peers", "", "comma-separated replication-cluster peers as name=base-url pairs (e.g. b=http://b:8080,c=http://c:8080); the electorate for -lease-ttl")
		replSelf      = flag.String("repl-self", "", "this node's own base URL, announced to peers on election win")
		replNode      = flag.String("repl-node", "", "this node's name in stream polls and votes (default: -repl-self)")
		group         = flag.String("group", "", "this node's shard group name; non-empty joins a horizontally partitioned control plane (empty = single-group layout)")
		groups        = flag.String("groups", "", "comma-separated peer groups as name=base-url pairs (e.g. g2=http://g2:8080,g3=http://g3:8080); requires -group")
		shardmapPath  = flag.String("shardmap", "", "PRM1 shard-map file: restored on boot, rewritten on every map adoption (empty = in-memory map)")
		scatterTO     = flag.Duration("scatter-timeout", 0, "scatter-gather fan-out deadline for fleet-wide surfaces (0 = default 2s)")
		routeRedirect = flag.Bool("route-redirect", false, "answer remote-owned requests with 307 + owner address instead of proxying server-side")
		admitDelay    = flag.Duration("admission-target-delay", 0, "CoDel-style sojourn target for priority admission: when the oldest in-flight request exceeds it, low-priority classes shed with 429 (0 = default 200ms)")
		admitInflight = flag.Int("admission-max-inflight", 0, "in-flight request depth backstop: classes below decision shed at this depth, decisions at twice it (0 = default 1024, negative = admission disabled)")
		admitClasses  = flag.Int("admission-shed-classes", 0, "how many priority classes, lowest first, sojourn shedding may refuse: 1 = background only, 2 = +writes, 3 = +reads; decisions never shed (0 = default 3)")
		brkThreshold  = flag.Int("breaker-threshold", 0, "consecutive transport failures that open a per-peer circuit breaker on every inter-node path (0 = default 5, negative = breakers disabled)")
		brkCooldown   = flag.Duration("breaker-cooldown", 0, "how long an open breaker refuses calls before admitting a single recovery probe (0 = default 2s)")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(version())
		return
	}

	// Log the full effective configuration — every flag with its resolved
	// value, defaults included — so any incident's logs begin with the exact
	// knob settings the process ran under.
	log.Printf("prorp-serve: %s", version())
	flag.VisitAll(func(f *flag.Flag) {
		log.Printf("prorp-serve: config -%s=%s", f.Name, f.Value.String())
	})

	fsyncPolicy, err := wal.ParsePolicy(*walFsync)
	if err != nil {
		log.Fatalf("prorp-serve: -wal-fsync: %v", err)
	}
	nodeRole, err := repl.ParseRole(*role)
	if err != nil {
		log.Fatalf("prorp-serve: -role: %v", err)
	}

	opts := prorp.DefaultOptions()
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatalf("prorp-serve: %v", err)
		}
		if err := json.Unmarshal(data, &opts); err != nil {
			log.Fatalf("prorp-serve: parsing %s: %v", *configPath, err)
		}
	}

	backoff := faults.DefaultBackoff()
	backoff.Attempts = *retryAttempts
	backoff.Base = *retryBase
	backoff.Max = *retryMax

	peers, err := parseGroupPeers(*groups)
	if err != nil {
		log.Fatalf("prorp-serve: -groups: %v", err)
	}
	if *group == "" && (len(peers) > 0 || *shardmapPath != "") {
		log.Fatalf("prorp-serve: -groups/-shardmap require -group")
	}
	clusterPeers, err := parseGroupPeers(*replPeers)
	if err != nil {
		log.Fatalf("prorp-serve: -repl-peers: %v", err)
	}

	srv, err := server.New(server.Config{
		Options:              opts,
		Shards:               *shards,
		SnapshotPath:         *snapshotPath,
		SnapshotEvery:        *snapshotEvery,
		Backoff:              backoff,
		DegradedAfter:        *degradedAfter,
		WALDir:               *walDir,
		WALFsync:             fsyncPolicy,
		WALSegmentBytes:      *walSegBytes,
		WALBatchInterval:     *walBatchEvery,
		Role:                 nodeRole,
		PrimaryAddr:          *primaryAddr,
		ReplPollInterval:     *replPoll,
		ReplMaxBatchBytes:    *replBatch,
		LeaseTTL:             *leaseTTL,
		ElectionTimeout:      *electionTO,
		QuorumAcks:           *quorumAcks,
		QuorumTimeout:        *quorumTO,
		ReplPeers:            clusterPeers,
		SelfAddr:             *replSelf,
		NodeID:               *replNode,
		Group:                *group,
		GroupPeers:           peers,
		ShardmapPath:         *shardmapPath,
		ScatterTimeout:       *scatterTO,
		RouterRedirect:       *routeRedirect,
		AdmissionTargetDelay: *admitDelay,
		AdmissionMaxInflight: *admitInflight,
		AdmissionShedClasses: *admitClasses,
		BreakerThreshold:     *brkThreshold,
		BreakerCooldown:      *brkCooldown,
		Logf:                 log.Printf,
	})
	if err != nil {
		log.Fatalf("prorp-serve: %v", err)
	}

	// Slow-client hardening: a peer that stalls mid-headers, mid-body, or
	// between keep-alive requests cannot pin a connection forever.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("prorp-serve: listening on %s (%d shards, mode %s, role %s)",
		*addr, srv.Fleet().Shards(), opts.Mode, srv.Node().Role())

	// Optional pprof surface on its own listener and mux, so profiling
	// endpoints never share a port (or an accidental route) with the
	// public API. A failed debug listener is logged, not fatal.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dm, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			log.Printf("prorp-serve: pprof debug listener on %s", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("prorp-serve: debug listener: %v", err)
			}
		}()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	select {
	case <-ctx.Done():
		log.Printf("prorp-serve: shutting down")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Printf("prorp-serve: http: %v", err)
		}
	}

	// Shutdown is strict, not best-effort: a failed HTTP drain or — far
	// worse — a failed final snapshot is logged and turned into a non-zero
	// exit, so supervisors restart the process instead of trusting a
	// silently stale snapshot.
	exit := 0
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("prorp-serve: http shutdown: %v", err)
		exit = 1
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("prorp-serve: debug listener shutdown: %v", err)
		}
	}
	if err := srv.Close(); err != nil {
		log.Printf("prorp-serve: final snapshot not persisted: %v", err)
		exit = 1
	}
	if exit != 0 {
		os.Exit(exit)
	}
	fmt.Println("prorp-serve: clean shutdown")
}
