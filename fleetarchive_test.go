package prorp

import (
	"bytes"
	"testing"
	"time"
)

func TestFleetArchiveRoundTrip(t *testing.T) {
	// Default 28-day history: database 2's lone login stays below the
	// confidence threshold (logical pause), while database 3's ten-day
	// pattern still clears it (9/28 > 0.1).
	opts := DefaultOptions()
	fleet, _ := NewFleet(opts)

	// Three databases in three different states.
	fleet.Create(1, t0.Add(9*time.Hour)) // stays resumed/active
	fleet.Create(2, t0)                  // logically paused
	fleet.Idle(2, t0.Add(time.Hour))
	fleet.Create(3, t0.Add(9*time.Hour)) // patterned, physically paused
	for d := 0; d < 10; d++ {
		base := t0.Add(time.Duration(d) * 24 * time.Hour)
		if d > 0 {
			fleet.Login(3, base.Add(9*time.Hour))
		}
		fleet.Idle(3, base.Add(12*time.Hour))
		fleet.Login(3, base.Add(15*time.Hour))
		fleet.Idle(3, base.Add(17*time.Hour))
	}

	var buf bytes.Buffer
	if _, err := fleet.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	restored, wakes, err := RestoreFleet(opts, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Size() != 3 {
		t.Fatalf("restored %d databases, want 3", restored.Size())
	}
	for id, wantState := range map[int]State{
		1: Resumed, 2: LogicallyPaused, 3: PhysicallyPaused,
	} {
		db, ok := restored.Database(id)
		if !ok {
			t.Fatalf("database %d missing", id)
		}
		if db.State() != wantState {
			t.Fatalf("database %d state %v, want %v", id, db.State(), wantState)
		}
	}
	// Exactly the logically paused database needs a wake.
	if len(wakes) != 1 || wakes[0].ID != 2 {
		t.Fatalf("wakes = %+v, want database 2 only", wakes)
	}
	// The physically paused database's metadata survived: the control
	// plane prewarms it on schedule.
	if restored.PausedCount() != 1 {
		t.Fatalf("PausedCount = %d", restored.PausedCount())
	}
	due := t0.Add(10*24*time.Hour + 8*time.Hour + 55*time.Minute)
	got := restored.RunResumeOp(due)
	if len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("restored RunResumeOp = %+v", got)
	}
}

func TestFleetArchiveEmpty(t *testing.T) {
	fleet, _ := NewFleet(DefaultOptions())
	var buf bytes.Buffer
	if _, err := fleet.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, wakes, err := RestoreFleet(DefaultOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Size() != 0 || len(wakes) != 0 {
		t.Fatal("empty archive restored content")
	}
}

func TestRestoreFleetRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": make([]byte, 8),
		"truncated": func() []byte {
			fleet, _ := NewFleet(DefaultOptions())
			fleet.Create(1, t0)
			var buf bytes.Buffer
			fleet.WriteTo(&buf)
			return buf.Bytes()[:buf.Len()-3]
		}(),
	}
	for name, data := range cases {
		if _, _, err := RestoreFleet(DefaultOptions(), bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	bad := DefaultOptions()
	bad.Confidence = -1
	if _, _, err := RestoreFleet(bad, bytes.NewReader(nil)); err == nil {
		t.Error("invalid options accepted")
	}
}
