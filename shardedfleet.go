package prorp

import (
	"io"
	"math"
	"time"

	"prorp/internal/historystore"
	"prorp/internal/maintenance"
	"prorp/internal/obs"
	"prorp/internal/policy"
	"prorp/internal/predictor"
	"prorp/internal/shardedfleet"
)

// ShardedFleet is the online serving runtime: a lock-striped fleet that
// partitions databases across shards (FNV hash on database id), each shard
// behind its own mutex with a worker goroutine draining a bounded event
// queue — so unrelated databases never contend, unlike SyncedFleet's
// single global mutex. It mirrors the SyncedFleet API (switching is one
// constructor change) and adds whole-fleet snapshots, deletion, live KPI
// counters, and prediction introspection. See internal/shardedfleet for the
// runtime's concurrency contract.
//
// Callers must Close a ShardedFleet to stop its shard workers.
type ShardedFleet struct {
	rt   *shardedfleet.Runtime
	opts Options
}

// NewShardedFleet builds a sharded fleet with the default stripe count.
func NewShardedFleet(opts Options) (*ShardedFleet, error) {
	return NewShardedFleetShards(opts, 0)
}

// NewShardedFleetShards builds a sharded fleet with an explicit stripe
// count (0 = default).
func NewShardedFleetShards(opts Options, shards int) (*ShardedFleet, error) {
	rt, err := shardedfleet.New(shardedfleet.Config{
		Shards:  shards,
		Policy:  opts.policyConfig(),
		Control: opts.controlPlaneConfig(),
	})
	if err != nil {
		return nil, err
	}
	return &ShardedFleet{rt: rt, opts: opts}, nil
}

// Close stops the shard workers after draining queued events. The fleet
// stays readable and snapshottable; asynchronous submission fails
// afterwards, while synchronous operations remain usable.
func (s *ShardedFleet) Close() { s.rt.Close() }

// InstrumentObs attaches the fleet runtime's live instrumentation —
// per-event-kind decision latency histograms, the Algorithm 5 scan
// duration, and per-shard queue-depth gauges — to reg. Hosts outside this
// module cannot name the internal registry type, by design: observability
// is a serving-stack concern, wired by internal/server. Without a registry
// attached the hot path pays one atomic load per event.
func (s *ShardedFleet) InstrumentObs(reg *obs.Registry) { s.rt.Instrument(reg) }

// Shards reports the stripe count.
func (s *ShardedFleet) Shards() int { return s.rt.NumShards() }

// QueueSojourn reports the worst measured enqueue-to-apply delay across
// the shard queues — the fleet's queue-congestion signal, folded into
// the serving layer's overload pressure state.
func (s *ShardedFleet) QueueSojourn() time.Duration { return s.rt.QueueSojourn() }

// QueueSheds reports how many sheddable submissions the shard queues
// refused for congestion (see internal/shardedfleet.TrySubmitSheddable).
func (s *ShardedFleet) QueueSheds() uint64 { return s.rt.QueueSheds() }

// Create adds a new database created at createdAt.
func (s *ShardedFleet) Create(id int, createdAt time.Time) error {
	return s.rt.Create(id, createdAt.Unix())
}

// Delete drops a database and its control-plane metadata.
func (s *ShardedFleet) Delete(id int) error { return s.rt.Delete(id) }

// Login records the start of customer activity.
func (s *ShardedFleet) Login(id int, t time.Time) (Decision, error) {
	eff, err := s.rt.Login(id, t.Unix())
	return decisionFrom(eff), err
}

// Idle records the end of customer activity.
func (s *ShardedFleet) Idle(id int, t time.Time) (Decision, error) {
	eff, err := s.rt.Logout(id, t.Unix())
	return decisionFrom(eff), err
}

// Wake delivers a scheduled wake-up.
func (s *ShardedFleet) Wake(id int, t time.Time) (Decision, error) {
	eff, err := s.rt.Wake(id, t.Unix())
	return decisionFrom(eff), err
}

// RunResumeOp runs one control-plane iteration (Algorithm 5), scanning the
// shards concurrently and merging the due databases under the fleet-wide
// per-iteration cap.
func (s *ShardedFleet) RunResumeOp(now time.Time) []Prewarmed {
	pws := s.rt.RunResumeOp(now.Unix())
	out := make([]Prewarmed, len(pws))
	for i, pw := range pws {
		out[i] = Prewarmed{ID: pw.ID, Decision: decisionFrom(pw.Effects)}
	}
	return out
}

// DueForResume runs phase one of Algorithm 5 alone: the read-only scan for
// databases due a pre-warm, uncapped and sorted. Multi-group deployments
// merge every group's scan before applying the global prewarm cap.
func (s *ShardedFleet) DueForResume(now time.Time) []int {
	return s.rt.DueForResume(now.Unix())
}

// PrewarmIDs runs phase two of Algorithm 5 over an explicit id set: each id
// is re-checked under its shard lock and pre-warmed if still physically
// paused. The caller is responsible for any cap.
func (s *ShardedFleet) PrewarmIDs(now time.Time, ids []int) []Prewarmed {
	pws := s.rt.PrewarmIDs(now.Unix(), ids)
	out := make([]Prewarmed, len(pws))
	for i, pw := range pws {
		out[i] = Prewarmed{ID: pw.ID, Decision: decisionFrom(pw.Effects)}
	}
	return out
}

// IDs returns every database id in the fleet, sorted.
func (s *ShardedFleet) IDs() []int { return s.rt.IDs() }

// State reports a database's lifecycle state.
func (s *ShardedFleet) State(id int) (State, error) {
	st, err := s.rt.State(id)
	return State(st), err
}

// Size reports the number of databases.
func (s *ShardedFleet) Size() int { return s.rt.Size() }

// PausedCount reports how many databases are physically paused.
func (s *ShardedFleet) PausedCount() int { return s.rt.PausedCount() }

// NextPredictedActivity returns a database's current prediction, if any
// (see Database.NextPredictedActivity for its caveats).
func (s *ShardedFleet) NextPredictedActivity(id int) (start, end time.Time, ok bool, err error) {
	var next predictor.Activity
	if err = s.rt.View(id, func(m *policy.Machine) { next = m.NextActivity() }); err != nil {
		return time.Time{}, time.Time{}, false, err
	}
	if next.IsZero() {
		return time.Time{}, time.Time{}, false, nil
	}
	return time.Unix(next.Start, 0).UTC(), time.Unix(next.End, 0).UTC(), true, nil
}

// ExplainPrediction scans every candidate window for one database as of
// now (see Database.ExplainPrediction). The scan runs under the owning
// shard's lock; it is for debugging and tooling, not the hot path.
func (s *ShardedFleet) ExplainPrediction(id int, now time.Time) (windows []PredictionWindow, start, end time.Time, ok bool, err error) {
	var stats []predictor.WindowStat
	var pred predictor.Activity
	verr := s.rt.View(id, func(m *policy.Machine) {
		stats, pred, ok = predictor.Explain(m.History(), s.opts.policyConfig().Predictor, now.Unix())
	})
	if verr != nil {
		return nil, time.Time{}, time.Time{}, false, verr
	}
	windows = make([]PredictionWindow, len(stats))
	for i, st := range stats {
		windows[i] = PredictionWindow{
			Start:       time.Unix(st.WinStart, 0).UTC(),
			Probability: st.Probability,
			Qualifies:   st.Qualifies,
			Selected:    st.Selected,
		}
	}
	if !ok {
		return windows, time.Time{}, time.Time{}, false, nil
	}
	return windows, time.Unix(pred.Start, 0).UTC(), time.Unix(pred.End, 0).UTC(), true, nil
}

// PlanMaintenance schedules a maintenance operation for one database (see
// Database.PlanMaintenance).
func (s *ShardedFleet) PlanMaintenance(id int, now time.Time, duration time.Duration, deadline time.Time) (MaintenancePlan, error) {
	var (
		avail bool
		next  predictor.Activity
	)
	if err := s.rt.View(id, func(m *policy.Machine) {
		avail = m.ResourcesAvailable()
		next = m.NextActivity()
	}); err != nil {
		return MaintenancePlan{}, err
	}
	plan, err := maintenance.Schedule(maintenance.Op{
		DB:          id,
		DurationSec: int64(duration / time.Second),
		DeadlineSec: deadline.Unix(),
	}, now.Unix(), avail, next)
	if err != nil {
		return MaintenancePlan{}, err
	}
	return MaintenancePlan{
		Start:        time.Unix(plan.Start, 0).UTC(),
		Strategy:     MaintenanceStrategy(plan.Strategy),
		AvoidsResume: plan.AvoidsResume,
	}, nil
}

// ActivityEvent is one login or logout in a database's recorded history.
type ActivityEvent struct {
	Time  time.Time
	Login bool
}

// History returns a database's recorded activity events in chronological
// order. It reads under the owning shard's lock; it is for verification
// and tooling, not the hot path.
func (s *ShardedFleet) History(id int) ([]ActivityEvent, error) {
	var out []ActivityEvent
	err := s.rt.View(id, func(m *policy.Machine) {
		for _, e := range m.History().Scan(math.MinInt64, math.MaxInt64) {
			out = append(out, ActivityEvent{
				Time:  time.Unix(e.Time, 0).UTC(),
				Login: e.Type == historystore.EventStart,
			})
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Snapshot serializes one database (see Database.WriteTo).
func (s *ShardedFleet) Snapshot(id int, w io.Writer) error {
	var err error
	if verr := s.rt.View(id, func(m *policy.Machine) { _, err = m.WriteTo(w) }); verr != nil {
		return verr
	}
	return err
}

// Restore adds a snapshotted database (see Fleet.Restore). The returned
// wakeAt is non-zero when the host must schedule a Wake.
func (s *ShardedFleet) Restore(id int, r io.Reader) (wakeAt time.Time, err error) {
	ts, err := s.rt.RestoreDB(id, r)
	if err != nil {
		return time.Time{}, err
	}
	if ts > 0 {
		wakeAt = time.Unix(ts, 0).UTC()
	}
	return wakeAt, nil
}

// WriteTo archives the whole fleet under a consistent quiesce, in the same
// wire format as Fleet.WriteTo — archives move freely between the two. It
// implements io.WriterTo.
func (s *ShardedFleet) WriteTo(w io.Writer) (int64, error) { return s.rt.WriteTo(w) }

// RestoreShardedFleet reconstructs a sharded fleet (0 shards = default
// stripe count) from an archive written by Fleet.WriteTo,
// SyncedFleet.WriteTo, or ShardedFleet.WriteTo, under possibly re-trained
// options. It returns the wake-ups the host must schedule for logically
// paused databases.
func RestoreShardedFleet(opts Options, shards int, r io.Reader) (*ShardedFleet, []PendingWake, error) {
	sf, err := NewShardedFleetShards(opts, shards)
	if err != nil {
		return nil, nil, err
	}
	pending, err := sf.rt.RestoreArchive(r)
	if err != nil {
		sf.Close()
		return nil, nil, err
	}
	wakes := make([]PendingWake, len(pending))
	for i, p := range pending {
		wakes[i] = PendingWake{ID: p.ID, WakeAt: time.Unix(p.WakeAt, 0).UTC()}
	}
	return sf, wakes, nil
}

// FleetKPI is a point-in-time operational report over a ShardedFleet:
// cumulative transition counters since the fleet started (they are not
// persisted in snapshots) plus current state gauges.
type FleetKPI struct {
	// Gauges.
	Databases        int `json:"databases"`
	Resumed          int `json:"resumed"`
	LogicallyPaused  int `json:"logically_paused"`
	PhysicallyPaused int `json:"physically_paused"`
	QueuedEvents     int `json:"queued_events"`
	// Counters.
	Creates        uint64 `json:"creates"`
	Deletes        uint64 `json:"deletes"`
	Logins         uint64 `json:"logins"`
	Logouts        uint64 `json:"logouts"`
	Wakes          uint64 `json:"wakes"`
	WarmResumes    uint64 `json:"warm_resumes"`
	ColdResumes    uint64 `json:"cold_resumes"`
	LogicalPauses  uint64 `json:"logical_pauses"`
	PhysicalPauses uint64 `json:"physical_pauses"`
	Prewarms       uint64 `json:"prewarms"`
	PrewarmsUsed   uint64 `json:"prewarms_used"`
	PrewarmsWasted uint64 `json:"prewarms_wasted"`
	// Resilience counters, filled by the serving layer (zero in library
	// use): backoff retries and terminal failures of snapshot persistence
	// and of the infrastructure side of prewarm/wake delivery, plus boots
	// that restored from the last-known-good fallback snapshot.
	SnapshotRetries   uint64 `json:"snapshot_retries"`
	SnapshotFailures  uint64 `json:"snapshot_failures"`
	SnapshotFallbacks uint64 `json:"snapshot_fallbacks"`
	PrewarmRetries    uint64 `json:"prewarm_retries"`
	PrewarmFailures   uint64 `json:"prewarm_failures"`
	WakeRetries       uint64 `json:"wake_retries"`
	WakeFailures      uint64 `json:"wake_failures"`
	// Durability counters, filled by the serving layer when a write-ahead
	// event journal is configured (zero in library use): journal appends,
	// fsyncs, and segment churn, plus what boot-time replay did.
	WALAppends           uint64 `json:"wal_appends"`
	WALAppendFailures    uint64 `json:"wal_append_failures"`
	WALFsyncs            uint64 `json:"wal_fsyncs"`
	WALRotations         uint64 `json:"wal_rotations"`
	WALSegmentsCompacted uint64 `json:"wal_segments_compacted"`
	WALReplayedRecords   uint64 `json:"wal_replayed_records"`
	WALReplaySkipped     uint64 `json:"wal_replay_skipped"`
	WALTornSegments      uint64 `json:"wal_torn_segments"`
	WALTruncatedBytes    uint64 `json:"wal_truncated_bytes"`
}

// QoSPercent is the paper's headline KPI over the counters: the share of
// first logins after idle that found resources available.
func (k FleetKPI) QoSPercent() float64 {
	total := k.WarmResumes + k.ColdResumes
	if total == 0 {
		return 100
	}
	return 100 * float64(k.WarmResumes) / float64(total)
}

// KPI reports the fleet's live KPI counters and state gauges.
func (s *ShardedFleet) KPI() FleetKPI {
	c := s.rt.KPI()
	resumed, logical, physical := s.rt.StateCounts()
	return FleetKPI{
		Databases:        resumed + logical + physical,
		Resumed:          resumed,
		LogicallyPaused:  logical,
		PhysicallyPaused: physical,
		QueuedEvents:     s.rt.Backlog(),
		Creates:          c.Creates,
		Deletes:          c.Deletes,
		Logins:           c.Logins,
		Logouts:          c.Logouts,
		Wakes:            c.Wakes,
		WarmResumes:      c.WarmResumes,
		ColdResumes:      c.ColdResumes,
		LogicalPauses:    c.LogicalPauses,
		PhysicalPauses:   c.PhysicalPauses,
		Prewarms:         c.Prewarms,
		PrewarmsUsed:     c.PrewarmsUsed,
		PrewarmsWasted:   c.PrewarmsWasted,
	}
}
