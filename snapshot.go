package prorp

import (
	"fmt"
	"io"
	"time"

	"prorp/internal/policy"
)

// WriteTo serializes the database controller — lifecycle state, prediction,
// and the full activity history — so it can move across nodes or survive a
// control-plane restart (the durability requirement of Section 3.3 of the
// paper). It implements io.WriterTo.
func (d *Database) WriteTo(w io.Writer) (int64, error) {
	return d.machine.WriteTo(w)
}

// RestoreDatabase reconstructs a controller from a snapshot written by
// WriteTo. Options need not match the snapshotting side: restored
// databases immediately follow re-trained knobs. The returned wakeAt is
// non-zero when the database was logically paused and the host must call
// Wake at (or after) that time.
func RestoreDatabase(opts Options, id int, r io.Reader) (db *Database, wakeAt time.Time, err error) {
	m, err := policy.Restore(opts.policyConfig(), r)
	if err != nil {
		return nil, time.Time{}, err
	}
	db = &Database{id: id, machine: m, opts: opts}
	if ts := m.RestoredTimer(); ts > 0 {
		wakeAt = time.Unix(ts, 0).UTC()
	}
	return db, wakeAt, nil
}

// Restore adds a snapshotted database to the fleet, re-registering its
// control-plane metadata: a physically paused database becomes eligible
// for proactive resume again without waiting for its next pause.
func (f *Fleet) Restore(id int, r io.Reader) (db *Database, wakeAt time.Time, err error) {
	if _, exists := f.dbs[id]; exists {
		return nil, time.Time{}, fmt.Errorf("prorp: database %d already exists", id)
	}
	db, wakeAt, err = RestoreDatabase(f.opts, id, r)
	if err != nil {
		return nil, time.Time{}, err
	}
	f.dbs[id] = db
	if db.State() == PhysicallyPaused && f.opts.Mode == Proactive {
		var predStart int64
		if start, _, ok := db.NextPredictedActivity(); ok {
			predStart = start.Unix()
		}
		f.meta.SetPaused(id, predStart)
	}
	return db, wakeAt, nil
}
