package prorp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"
)

// Fleet archives serialize every database of a fleet in one stream, so a
// control-plane restart (or a wholesale node migration) restores the
// complete region state: lifecycle states, histories, predictions, and the
// paused-database metadata. Format:
//
//	magic  uint32 'PRF1'
//	count  uint32
//	count x { id int64, size uint32, database snapshot (policy wire format) }

const fleetMagic = 0x50524631 // "PRF1"

// WriteTo archives the whole fleet, databases in id order. It implements
// io.WriterTo.
func (f *Fleet) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], fleetMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(f.dbs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	written := int64(len(hdr))

	ids := make([]int, 0, len(f.dbs))
	for id := range f.dbs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var snap bytes.Buffer
	for _, id := range ids {
		snap.Reset()
		if _, err := f.dbs[id].WriteTo(&snap); err != nil {
			return written, err
		}
		var rec [12]byte
		binary.LittleEndian.PutUint64(rec[0:8], uint64(int64(id)))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(snap.Len()))
		if _, err := bw.Write(rec[:]); err != nil {
			return written, err
		}
		written += int64(len(rec))
		n, err := bw.Write(snap.Bytes())
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// PendingWake pairs a restored database with the wake-up its host must
// schedule.
type PendingWake struct {
	ID     int
	WakeAt time.Time
}

// RestoreFleet reconstructs a fleet from an archive written by WriteTo,
// under possibly re-trained options. It returns the wake-ups the host must
// schedule for logically paused databases. Undecodable input — truncated,
// bit-flipped, wrong format — yields an error wrapping ErrCorruptArchive,
// never a panic.
func RestoreFleet(opts Options, r io.Reader) (*Fleet, []PendingWake, error) {
	fleet, err := NewFleet(opts)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("prorp: %w: reading header: %w", ErrCorruptArchive, err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != fleetMagic {
		return nil, nil, fmt.Errorf("prorp: %w: bad magic %#x", ErrCorruptArchive, got)
	}
	count := binary.LittleEndian.Uint32(hdr[4:8])

	var wakes []PendingWake
	for i := uint32(0); i < count; i++ {
		var rec [12]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, nil, fmt.Errorf("prorp: %w: reading entry %d of %d: %w", ErrCorruptArchive, i, count, err)
		}
		id := int(int64(binary.LittleEndian.Uint64(rec[0:8])))
		size := binary.LittleEndian.Uint32(rec[8:12])
		_, wakeAt, err := fleet.Restore(id, io.LimitReader(br, int64(size)))
		if err != nil {
			return nil, nil, fmt.Errorf("prorp: %w: restoring database %d: %w", ErrCorruptArchive, id, err)
		}
		if !wakeAt.IsZero() {
			wakes = append(wakes, PendingWake{ID: id, WakeAt: wakeAt})
		}
	}
	return fleet, wakes, nil
}
