package prorp

import (
	"bytes"
	"testing"
	"time"
)

var t0 = time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC)

func TestDefaultOptionsMatchPaperTable1(t *testing.T) {
	o := DefaultOptions()
	if o.LogicalPause != 7*time.Hour {
		t.Errorf("l = %v, want 7h", o.LogicalPause)
	}
	if o.History != 28*24*time.Hour {
		t.Errorf("h = %v, want 28 days", o.History)
	}
	if o.Horizon != 24*time.Hour {
		t.Errorf("p = %v, want 24h", o.Horizon)
	}
	if o.Confidence != 0.1 {
		t.Errorf("c = %v, want 0.1", o.Confidence)
	}
	if o.Window != 7*time.Hour {
		t.Errorf("w = %v, want 7h", o.Window)
	}
	if o.Slide != 5*time.Minute {
		t.Errorf("s = %v, want 5min", o.Slide)
	}
	if o.PrewarmLead != 5*time.Minute {
		t.Errorf("k = %v, want 5min", o.PrewarmLead)
	}
	if o.Seasonality != Daily {
		t.Errorf("seasonality = %v, want daily", o.Seasonality)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidate(t *testing.T) {
	o := DefaultOptions()
	o.Confidence = 5
	if o.Validate() == nil {
		t.Error("confidence 5 accepted")
	}
	o = DefaultOptions()
	o.LogicalPause = 0
	if o.Validate() == nil {
		t.Error("zero logical pause accepted")
	}
	o = DefaultOptions()
	o.ResumeOpPeriod = 0
	if o.Validate() == nil {
		t.Error("zero resume-op period accepted")
	}
	// Reactive mode does not need prediction knobs.
	o = Options{Mode: Reactive, LogicalPause: time.Hour}
	if err := o.Validate(); err != nil {
		t.Errorf("minimal reactive options rejected: %v", err)
	}
}

func TestDatabaseLifecycle(t *testing.T) {
	db, err := NewDatabase(DefaultOptions(), 7, t0)
	if err != nil {
		t.Fatal(err)
	}
	if db.ID() != 7 {
		t.Errorf("ID = %d", db.ID())
	}
	if db.State() != Resumed || !db.Active() || !db.ResourcesAvailable() {
		t.Fatalf("fresh database state = %v", db.State())
	}
	if db.HistoryTuples() != 1 || db.HistoryBytes() != 16 {
		t.Fatalf("history = %d tuples / %d bytes", db.HistoryTuples(), db.HistoryBytes())
	}

	// New database goes logically paused on idle, with a wake at +7h.
	d := db.Idle(t0.Add(2 * time.Hour))
	if d.Event != EventLogicalPause {
		t.Fatalf("Idle -> %v, want logical-pause", d.Event)
	}
	if want := t0.Add(9 * time.Hour); !d.WakeAt.Equal(want) {
		t.Fatalf("WakeAt = %v, want %v", d.WakeAt, want)
	}
	if db.State() != LogicallyPaused {
		t.Fatalf("state = %v", db.State())
	}

	// Wake at the pause end physically pauses (new database, no
	// prediction).
	d = db.Wake(d.WakeAt)
	if d.Event != EventPhysicalPause || !d.Reclaim {
		t.Fatalf("Wake -> %+v, want physical pause with reclaim", d)
	}
	if db.ResourcesAvailable() {
		t.Fatal("resources still available after physical pause")
	}

	// Cold login.
	d = db.Login(t0.Add(20 * time.Hour))
	if d.Event != EventResumeCold || !d.Allocate {
		t.Fatalf("Login -> %+v, want cold resume with allocate", d)
	}
	if _, _, ok := db.NextPredictedActivity(); ok {
		t.Error("new database reported a prediction")
	}
}

func TestDatabasePredictsDailyPattern(t *testing.T) {
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	db, err := NewDatabase(opts, 1, t0.Add(9*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Ten days of 9:00-12:00 / 15:00-17:00 activity.
	for d := 0; d < 10; d++ {
		base := t0.Add(time.Duration(d) * 24 * time.Hour)
		if d > 0 {
			db.Login(base.Add(9 * time.Hour))
		}
		db.Idle(base.Add(12 * time.Hour))
		db.Login(base.Add(15 * time.Hour))
		db.Idle(base.Add(17 * time.Hour))
	}
	start, end, ok := db.NextPredictedActivity()
	if !ok {
		t.Fatal("no prediction after 10 days of a daily pattern")
	}
	wantStart := t0.Add(10*24*time.Hour + 9*time.Hour)
	if !start.Equal(wantStart) {
		t.Fatalf("predicted start = %v, want %v", start, wantStart)
	}
	if end.Before(start) {
		t.Fatalf("predicted end %v before start %v", end, start)
	}
	if db.State() != PhysicallyPaused {
		t.Fatalf("state = %v, want physically paused overnight", db.State())
	}
}

func TestFleetPrewarmFlow(t *testing.T) {
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	fleet, err := NewFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fleet.Create(1, t0.Add(9*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Create(1, t0); err == nil {
		t.Fatal("duplicate Create accepted")
	}
	if fleet.Size() != 1 {
		t.Fatalf("Size = %d", fleet.Size())
	}

	for d := 0; d < 10; d++ {
		base := t0.Add(time.Duration(d) * 24 * time.Hour)
		if d > 0 {
			if _, err := fleet.Login(1, base.Add(9*time.Hour)); err != nil {
				t.Fatal(err)
			}
		}
		fleet.Idle(1, base.Add(12*time.Hour))
		fleet.Login(1, base.Add(15*time.Hour))
		fleet.Idle(1, base.Add(17*time.Hour))
	}
	if db.State() != PhysicallyPaused {
		t.Fatalf("state = %v, want physically paused", db.State())
	}
	if fleet.PausedCount() != 1 {
		t.Fatalf("PausedCount = %d", fleet.PausedCount())
	}

	// The resume op before the pre-warm lead does nothing...
	early := t0.Add(10*24*time.Hour + 8*time.Hour)
	if got := fleet.RunResumeOp(early); len(got) != 0 {
		t.Fatalf("early RunResumeOp prewarmed %v", got)
	}
	// ...and pre-warms within the lead of the predicted 9:00 login.
	due := t0.Add(10*24*time.Hour + 8*time.Hour + 55*time.Minute)
	got := fleet.RunResumeOp(due)
	if len(got) != 1 || got[0].ID != 1 || got[0].Decision.Event != EventPrewarm {
		t.Fatalf("RunResumeOp = %+v", got)
	}
	if !got[0].Decision.Allocate {
		t.Fatal("prewarm decision did not allocate")
	}
	if db.State() != LogicallyPaused {
		t.Fatalf("state after prewarm = %v", db.State())
	}
	// A second op must not prewarm again.
	if again := fleet.RunResumeOp(due.Add(time.Minute)); len(again) != 0 {
		t.Fatalf("second RunResumeOp = %+v", again)
	}

	// The on-schedule login is warm and attributed to the prewarm.
	d, err := fleet.Login(1, t0.Add(10*24*time.Hour+9*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if d.Event != EventResumeWarm || !d.FromPrewarm {
		t.Fatalf("login decision = %+v, want warm from prewarm", d)
	}
}

func TestFleetUnknownDatabase(t *testing.T) {
	fleet, _ := NewFleet(DefaultOptions())
	if _, err := fleet.Login(99, t0); err == nil {
		t.Error("Login on unknown database succeeded")
	}
	if _, err := fleet.Idle(99, t0); err == nil {
		t.Error("Idle on unknown database succeeded")
	}
	if _, err := fleet.Wake(99, t0); err == nil {
		t.Error("Wake on unknown database succeeded")
	}
	if _, ok := fleet.Database(99); ok {
		t.Error("Database(99) found")
	}
}

func TestReactiveFleetNeverPrewarms(t *testing.T) {
	opts := DefaultOptions()
	opts.Mode = Reactive
	fleet, err := NewFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Create(1, t0)
	fleet.Idle(1, t0.Add(time.Hour))
	db, _ := fleet.Database(1)
	d := db.Wake(t0.Add(8 * time.Hour))
	if d.Event != EventPhysicalPause {
		t.Fatalf("reactive wake -> %v", d.Event)
	}
	if got := fleet.RunResumeOp(t0.Add(9 * time.Hour)); got != nil {
		t.Fatalf("reactive fleet prewarmed %v", got)
	}
}

func TestSimulateSmall(t *testing.T) {
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	rep, err := Simulate(SimulationConfig{
		Region:    "EU1",
		Databases: 60,
		EvalDays:  2,
		Seed:      3,
		Options:   &opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmLogins+rep.ColdLogins == 0 {
		t.Fatal("no logins measured")
	}
	if rep.QoSPercent <= 0 || rep.QoSPercent > 100 {
		t.Fatalf("QoS = %v", rep.QoSPercent)
	}
	total := rep.UsedPercent + rep.IdlePercent + rep.SavedPercent + rep.UnavailablePercent
	if total < 99.9 || total > 100.1 {
		t.Fatalf("percentages sum to %v", total)
	}
	if rep.String() == "" {
		t.Error("empty String()")
	}
}

func TestSimulateComparesPolicies(t *testing.T) {
	run := func(mode Mode) Report {
		opts := DefaultOptions()
		opts.Mode = mode
		opts.History = 7 * 24 * time.Hour
		rep, err := Simulate(SimulationConfig{
			Region: "EU1", Databases: 80, EvalDays: 2, Seed: 5, Options: &opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	pro, rea := run(Proactive), run(Reactive)
	if pro.QoSPercent <= rea.QoSPercent {
		t.Fatalf("proactive QoS %.1f <= reactive %.1f", pro.QoSPercent, rea.QoSPercent)
	}
	if rea.Prewarms != 0 {
		t.Fatal("reactive simulation prewarmed")
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	if _, err := Simulate(SimulationConfig{Region: "NOPE", Databases: 1, EvalDays: 1}); err == nil {
		t.Error("unknown region accepted")
	}
	if _, err := Simulate(SimulationConfig{Region: "EU1", Databases: 0, EvalDays: 1}); err == nil {
		t.Error("zero databases accepted")
	}
	if _, err := Simulate(SimulationConfig{Region: "EU1", Databases: 1, EvalDays: 0}); err == nil {
		t.Error("zero eval days accepted")
	}
	bad := DefaultOptions()
	bad.Confidence = -1
	if _, err := Simulate(SimulationConfig{Region: "EU1", Databases: 1, EvalDays: 1, Options: &bad}); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestRegions(t *testing.T) {
	rs := Regions()
	if len(rs) != 4 || rs[0] != "EU1" {
		t.Fatalf("Regions = %v", rs)
	}
}

func TestEnumStrings(t *testing.T) {
	if Proactive.String() != "proactive" || Reactive.String() != "reactive" {
		t.Error("Mode strings broken")
	}
	if Daily.String() != "daily" || Weekly.String() != "weekly" {
		t.Error("Seasonality strings broken")
	}
	if Resumed.String() == "" || LogicallyPaused.String() == "" || PhysicallyPaused.String() == "" {
		t.Error("State strings broken")
	}
	for _, e := range []Event{EventNone, EventResumeWarm, EventResumeCold,
		EventLogicalPause, EventPhysicalPause, EventPrewarm, EventStayLogical} {
		if e.String() == "" {
			t.Error("Event string empty")
		}
	}
}

func TestTelemetryExportAndOfflineEvaluation(t *testing.T) {
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	cfg := SimulationConfig{Region: "EU1", Databases: 50, EvalDays: 2, Seed: 9, Options: &opts}

	var buf bytes.Buffer
	online, err := SimulateWithTelemetry(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no telemetry exported")
	}
	// The simulation epoch is 0; warm-up is history+1 days.
	evalFrom := time.Unix(8*86400, 0)
	evalTo := time.Unix(10*86400, 0)
	offline, err := EvaluateTelemetry(&buf, evalFrom, evalTo)
	if err != nil {
		t.Fatal(err)
	}
	if offline.WarmLogins != online.WarmLogins || offline.ColdLogins != online.ColdLogins {
		t.Fatalf("offline logins %d/%d vs online %d/%d",
			offline.WarmLogins, offline.ColdLogins, online.WarmLogins, online.ColdLogins)
	}
	if offline.PhysicalPauses != online.PhysicalPauses {
		t.Fatalf("offline pauses %d vs online %d", offline.PhysicalPauses, online.PhysicalPauses)
	}
	if diff := offline.IdlePercent - online.IdlePercent; diff > 0.01 || diff < -0.01 {
		t.Fatalf("offline idle %.3f%% vs online %.3f%%", offline.IdlePercent, online.IdlePercent)
	}
}

func TestEvaluateTelemetryRejectsGarbage(t *testing.T) {
	if _, err := EvaluateTelemetry(bytes.NewReader([]byte("not,a,log\n")),
		time.Unix(0, 0), time.Unix(100, 0)); err == nil {
		t.Fatal("garbage log accepted")
	}
}

func TestExplainPrediction(t *testing.T) {
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	db, err := NewDatabase(opts, 1, t0.Add(9*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 10; d++ {
		base := t0.Add(time.Duration(d) * 24 * time.Hour)
		if d > 0 {
			db.Login(base.Add(9 * time.Hour))
		}
		db.Idle(base.Add(17 * time.Hour))
	}
	now := t0.Add(9*24*time.Hour + 18*time.Hour)
	windows, start, _, ok := db.ExplainPrediction(now)
	if !ok {
		t.Fatal("no prediction explained for a daily pattern")
	}
	if len(windows) == 0 {
		t.Fatal("no windows scanned")
	}
	wantStart := t0.Add(10*24*time.Hour + 9*time.Hour)
	if !start.Equal(wantStart) {
		t.Fatalf("explained start = %v, want %v", start, wantStart)
	}
	selected, qualifying := 0, 0
	for _, w := range windows {
		if w.Selected {
			selected++
		}
		if w.Qualifies {
			qualifying++
		}
	}
	if selected != 1 || qualifying == 0 {
		t.Fatalf("selected=%d qualifying=%d", selected, qualifying)
	}

	// A fresh database under the default 28-day history explains to
	// nothing: its single login gives any window at most 1/28 < 0.1.
	fresh, _ := NewDatabase(DefaultOptions(), 2, now)
	if _, _, _, ok := fresh.ExplainPrediction(now.Add(time.Hour)); ok {
		t.Fatal("fresh database explained a prediction")
	}
}
