package prorp

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// buildArchive produces a realistic PRF1 archive: a few databases with
// history, predictions, and mixed lifecycle states.
func buildArchive(t *testing.T) []byte {
	t.Helper()
	opts := DefaultOptions()
	opts.LogicalPause = time.Hour
	fleet, err := NewSyncedFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC)
	day := 24 * time.Hour
	for id := 1; id <= 4; id++ {
		if err := fleet.Create(id, start); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < 3; d++ {
		for id := 1; id <= 4; id++ {
			if d > 0 {
				fleet.Login(id, start.Add(time.Duration(d)*day+9*time.Hour))
			}
			fleet.Idle(id, start.Add(time.Duration(d)*day+17*time.Hour))
		}
	}
	var buf bytes.Buffer
	if _, err := fleet.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// restoreBoth runs one corrupted archive through both concurrency-safe
// restore paths and reports their errors. Any panic is converted into a
// test failure: corrupt input must yield a typed error, never a panic.
func restoreBoth(t *testing.T, label string, data []byte) (sharded, synced error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: restore panicked: %v", label, r)
		}
	}()
	sf, _, err := RestoreShardedFleet(DefaultOptions(), 4, bytes.NewReader(data))
	if sf != nil {
		sf.Close()
	}
	sharded = err
	_, _, synced = RestoreSyncedFleet(DefaultOptions(), bytes.NewReader(data))
	return sharded, synced
}

func TestRestoreTruncatedArchives(t *testing.T) {
	archive := buildArchive(t)
	// Every strict prefix is a truncation the decoder must reject: the
	// header's count field promises entries the stream cannot deliver.
	// Sample densely at the front (headers, first entry) and spread over
	// the rest.
	lengths := map[int]bool{}
	for n := 0; n < len(archive) && n < 64; n++ {
		lengths[n] = true
	}
	for n := 64; n < len(archive); n += 97 {
		lengths[n] = true
	}
	lengths[len(archive)-1] = true
	for n := range lengths {
		trunc := archive[:n]
		sharded, synced := restoreBoth(t, fmt.Sprintf("truncate[:%d]", n), trunc)
		if sharded == nil || synced == nil {
			t.Fatalf("truncate[:%d]: restore succeeded (sharded=%v synced=%v)", n, sharded, synced)
		}
		if !errors.Is(sharded, ErrCorruptArchive) {
			t.Fatalf("truncate[:%d]: sharded error %v does not wrap ErrCorruptArchive", n, sharded)
		}
		if !errors.Is(synced, ErrCorruptArchive) {
			t.Fatalf("truncate[:%d]: synced error %v does not wrap ErrCorruptArchive", n, synced)
		}
	}
}

func TestRestoreBitFlippedArchives(t *testing.T) {
	archive := buildArchive(t)
	rng := rand.New(rand.NewSource(7))
	// Exhaustive over the first bytes (magic, count, first record header),
	// then a seeded sample across the body. A flip may happen to produce a
	// decodable archive (PRF1 itself carries no checksum — that is the
	// snapshot container's job); what it must never do is panic, and when
	// it fails it must fail typed.
	offsets := map[int]bool{}
	for i := 0; i < 24 && i < len(archive); i++ {
		offsets[i] = true
	}
	for i := 0; i < 200; i++ {
		offsets[rng.Intn(len(archive))] = true
	}
	rejected := 0
	for off := range offsets {
		for bit := 0; bit < 8; bit++ {
			dirty := bytes.Clone(archive)
			dirty[off] ^= 1 << bit
			label := fmt.Sprintf("flip byte %d bit %d", off, bit)
			sharded, synced := restoreBoth(t, label, dirty)
			if (sharded == nil) != (synced == nil) {
				t.Fatalf("%s: paths disagree (sharded=%v synced=%v)", label, sharded, synced)
			}
			if sharded != nil {
				rejected++
				// A flip inside a database-id field can collide with an
				// existing id: that is a duplicate, not stream corruption, and
				// carries its own sentinel. Everything else must be typed
				// corrupt.
				if !errors.Is(sharded, ErrCorruptArchive) && !errors.Is(sharded, ErrDuplicateDatabase) {
					t.Fatalf("%s: sharded error %v wraps neither ErrCorruptArchive nor ErrDuplicateDatabase", label, sharded)
				}
				if !errors.Is(synced, ErrCorruptArchive) && !errors.Is(synced, ErrDuplicateDatabase) {
					t.Fatalf("%s: synced error %v wraps neither ErrCorruptArchive nor ErrDuplicateDatabase", label, synced)
				}
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no bit flip was ever rejected — decoder validates nothing?")
	}
}

func TestRestoreGarbageAndEmpty(t *testing.T) {
	cases := map[string][]byte{
		"empty":      {},
		"short":      {0x50},
		"zeros":      make([]byte, 64),
		"textual":    []byte("definitely not a fleet archive, not even close"),
		"bad-magic":  {0xDE, 0xAD, 0xBE, 0xEF, 1, 0, 0, 0},
		"magic-only": {0x31, 0x46, 0x52, 0x50}, // "PRF1" with no count
	}
	for name, data := range cases {
		sharded, synced := restoreBoth(t, name, data)
		if sharded == nil || synced == nil {
			t.Fatalf("%s: restore of garbage succeeded", name)
		}
		if !errors.Is(sharded, ErrCorruptArchive) || !errors.Is(synced, ErrCorruptArchive) {
			t.Fatalf("%s: errors not typed (sharded=%v synced=%v)", name, sharded, synced)
		}
	}
}
