package prorp

import (
	"encoding/json"
	"testing"
	"time"
)

func TestOptionsJSONRoundTrip(t *testing.T) {
	o := DefaultOptions()
	o.Mode = Reactive
	o.Confidence = 0.35
	o.Window = 4 * time.Hour
	o.Seasonality = Weekly
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back Options
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != o {
		t.Fatalf("round trip:\n got %+v\nwant %+v", back, o)
	}
}

func TestOptionsJSONPartialKeepsDefaults(t *testing.T) {
	var o Options
	if err := json.Unmarshal([]byte(`{"confidence":0.4,"window":"3h"}`), &o); err != nil {
		t.Fatal(err)
	}
	def := DefaultOptions()
	if o.Confidence != 0.4 || o.Window != 3*time.Hour {
		t.Fatalf("overrides not applied: %+v", o)
	}
	if o.LogicalPause != def.LogicalPause || o.History != def.History ||
		o.Mode != def.Mode || o.Seasonality != def.Seasonality {
		t.Fatalf("defaults not kept: %+v", o)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"mode":"psychic"}`,
		`{"seasonality":"lunar"}`,
		`{"window":"3 parsecs"}`,
		`{"logical_pause":"yes"}`,
		`[1,2,3]`,
	}
	for _, c := range cases {
		var o Options
		if err := json.Unmarshal([]byte(c), &o); err == nil {
			t.Errorf("accepted %s", c)
		}
	}
}

func TestOptionsJSONEmptyObjectIsDefaults(t *testing.T) {
	var o Options
	if err := json.Unmarshal([]byte(`{}`), &o); err != nil {
		t.Fatal(err)
	}
	if o != DefaultOptions() {
		t.Fatalf("empty object != defaults: %+v", o)
	}
}
