package prorp

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// fleetDriver is the operation surface shared by SyncedFleet and
// ShardedFleet; the equivalence test drives both through it.
type fleetDriver interface {
	Create(id int, createdAt time.Time) error
	Login(id int, t time.Time) (Decision, error)
	Idle(id int, t time.Time) (Decision, error)
	Wake(id int, t time.Time) (Decision, error)
	RunResumeOp(now time.Time) []Prewarmed
	State(id int) (State, error)
	PausedCount() int
}

var (
	_ fleetDriver = (*SyncedFleet)(nil)
	_ fleetDriver = (*ShardedFleet)(nil)
)

func equivOptions() Options {
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	opts.LogicalPause = time.Hour
	return opts
}

// driveScript replays a fixed multi-day workload — staggered daily
// 09:00–17:00 patterns, wake-up delivery, and a resume-op sweep every five
// minutes — and returns a textual trace of every Decision the fleet made.
func driveScript(t *testing.T, f fleetDriver) []string {
	t.Helper()
	const dbs = 10
	const days = 4

	type event struct {
		at    time.Time
		id    int
		login bool
	}
	var script []event
	for id := 0; id < dbs; id++ {
		stagger := time.Duration(id) * time.Minute
		if err := f.Create(id, t0.Add(9*time.Hour+stagger)); err != nil {
			t.Fatal(err)
		}
		for d := 0; d < days; d++ {
			base := t0.Add(time.Duration(d) * 24 * time.Hour)
			if d > 0 {
				script = append(script, event{base.Add(9*time.Hour + stagger), id, true})
			}
			script = append(script, event{base.Add(17*time.Hour + stagger), id, false})
		}
	}
	sort.Slice(script, func(i, j int) bool {
		if !script[i].at.Equal(script[j].at) {
			return script[i].at.Before(script[j].at)
		}
		return script[i].id < script[j].id
	})

	var trace []string
	pending := make(map[int]time.Time)
	record := func(kind string, id int, d Decision) {
		trace = append(trace, fmt.Sprintf("%s %d %+v", kind, id, d))
		if d.WakeAt.IsZero() {
			delete(pending, id)
		} else {
			pending[id] = d.WakeAt
		}
	}
	// advance delivers due wake-ups (in id order for determinism) up to now.
	advance := func(now time.Time) {
		for {
			due := -1
			for id, at := range pending {
				if !at.After(now) && (due < 0 || id < due) {
					due = id
				}
			}
			if due < 0 {
				return
			}
			at := pending[due]
			d, err := f.Wake(due, at)
			if err != nil {
				t.Fatal(err)
			}
			record("wake", due, d)
		}
	}

	next := 0
	for tick := t0; !tick.After(t0.Add((days + 1) * 24 * time.Hour)); tick = tick.Add(5 * time.Minute) {
		for next < len(script) && !script[next].at.After(tick) {
			ev := script[next]
			next++
			advance(ev.at)
			var (
				d   Decision
				err error
			)
			kind := "idle"
			if ev.login {
				kind = "login"
				d, err = f.Login(ev.id, ev.at)
			} else {
				d, err = f.Idle(ev.id, ev.at)
			}
			if err != nil {
				t.Fatal(err)
			}
			record(kind, ev.id, d)
		}
		advance(tick)
		for _, pw := range f.RunResumeOp(tick) {
			record("prewarm", pw.ID, pw.Decision)
		}
		trace = append(trace, fmt.Sprintf("paused %d @%d", f.PausedCount(), tick.Unix()))
	}
	for id := 0; id < dbs; id++ {
		st, err := f.State(id)
		if err != nil {
			t.Fatal(err)
		}
		trace = append(trace, fmt.Sprintf("state %d %v", id, st))
	}
	return trace
}

func TestShardedFleetMirrorsSyncedFleet(t *testing.T) {
	// The sharded runtime must be observationally identical to the
	// single-lock fleet: same decisions, same resume-op prewarm sets, same
	// states — switching implementations is one constructor change.
	sy, err := NewSyncedFleet(equivOptions())
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedFleetShards(equivOptions(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	want := driveScript(t, sy)
	got := driveScript(t, sh)
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: sharded %d, synced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace[%d]:\nsharded: %s\nsynced:  %s", i, got[i], want[i])
		}
	}
}

func TestShardedFleetConcurrentMatchesReplay(t *testing.T) {
	// Goroutines drive disjoint databases concurrently; the result must be
	// byte-identical (per-database snapshots) to a single-threaded replay of
	// the same per-database sequences, and the KPI counters must equal the
	// replay's transition tally.
	opts := equivOptions()
	sh, err := NewShardedFleetShards(opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	const dbs = 16
	const cycles = 20
	for id := 0; id < dbs; id++ {
		if err := sh.Create(id, t0.Add(time.Duration(id)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for id := 0; id < dbs; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			at := t0.Add(time.Duration(id) * time.Second)
			for c := 0; c < cycles; c++ {
				at = at.Add(30 * time.Minute)
				if _, err := sh.Idle(id, at); err != nil {
					t.Error(err)
					return
				}
				at = at.Add(30 * time.Minute)
				if _, err := sh.Login(id, at); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Single-threaded replay on the plain Fleet.
	fl, err := NewFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	var wantKPI FleetKPI
	tally := func(d Decision) {
		switch d.Event {
		case EventResumeWarm:
			wantKPI.WarmResumes++
		case EventResumeCold:
			wantKPI.ColdResumes++
		case EventLogicalPause:
			wantKPI.LogicalPauses++
		case EventPhysicalPause:
			wantKPI.PhysicalPauses++
		}
	}
	for id := 0; id < dbs; id++ {
		if _, err := fl.Create(id, t0.Add(time.Duration(id)*time.Second)); err != nil {
			t.Fatal(err)
		}
		at := t0.Add(time.Duration(id) * time.Second)
		for c := 0; c < cycles; c++ {
			at = at.Add(30 * time.Minute)
			d, err := fl.Idle(id, at)
			if err != nil {
				t.Fatal(err)
			}
			tally(d)
			at = at.Add(30 * time.Minute)
			d, err = fl.Login(id, at)
			if err != nil {
				t.Fatal(err)
			}
			tally(d)
		}
	}

	for id := 0; id < dbs; id++ {
		var got, want bytes.Buffer
		if err := sh.Snapshot(id, &got); err != nil {
			t.Fatal(err)
		}
		db, _ := fl.Database(id)
		if _, err := db.WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("database %d snapshot differs from single-threaded replay", id)
		}
	}
	if sh.PausedCount() != fl.PausedCount() {
		t.Fatalf("PausedCount = %d, replay %d", sh.PausedCount(), fl.PausedCount())
	}
	kpi := sh.KPI()
	if kpi.WarmResumes != wantKPI.WarmResumes || kpi.ColdResumes != wantKPI.ColdResumes ||
		kpi.LogicalPauses != wantKPI.LogicalPauses || kpi.PhysicalPauses != wantKPI.PhysicalPauses {
		t.Fatalf("KPI = %+v, replay tally %+v", kpi, wantKPI)
	}
	if kpi.Logins != dbs*cycles || kpi.Logouts != dbs*cycles || kpi.Creates != dbs {
		t.Fatalf("KPI event counts = %+v", kpi)
	}
}

func TestFleetArchiveInterop(t *testing.T) {
	// Archives move freely between SyncedFleet, ShardedFleet, and Fleet:
	// same wire format, same restored states, same pending wakes.
	// The default 28-day history keeps database 4 unpredicted after its
	// single login, so it logically pauses (pending wake); databases 0..3
	// run a four-day daily pattern — enough matching days to predict — and
	// end physically paused; database 5 stays active.
	opts := DefaultOptions()
	opts.LogicalPause = time.Hour
	sy, err := NewSyncedFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if err := sy.Create(id, t0.Add(9*time.Hour)); err != nil {
			t.Fatal(err)
		}
		for d := 0; d < 4; d++ {
			base := t0.Add(time.Duration(d) * 24 * time.Hour)
			if d > 0 {
				if _, err := sy.Login(id, base.Add(9*time.Hour)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sy.Idle(id, base.Add(17*time.Hour)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sy.Create(4, t0.Add(9*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := sy.Idle(4, t0.Add(10*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := sy.Create(5, t0.Add(9*time.Hour)); err != nil {
		t.Fatal(err)
	}

	wantState := func(t *testing.T, f fleetDriver) {
		t.Helper()
		for id := 0; id < 6; id++ {
			want, err := sy.State(id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.State(id)
			if err != nil || got != want {
				t.Fatalf("State(%d) = %v, %v; want %v", id, got, err, want)
			}
		}
	}

	var syncedArchive bytes.Buffer
	if _, err := sy.WriteTo(&syncedArchive); err != nil {
		t.Fatal(err)
	}

	// SyncedFleet archive -> ShardedFleet.
	sh, shWakes, err := RestoreShardedFleet(opts, 3, bytes.NewReader(syncedArchive.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if sh.Size() != 6 || sh.PausedCount() != sy.PausedCount() {
		t.Fatalf("restored sharded: Size %d PausedCount %d", sh.Size(), sh.PausedCount())
	}
	wantState(t, sh)
	if len(shWakes) != 1 || shWakes[0].ID != 4 || !shWakes[0].WakeAt.Equal(t0.Add(11*time.Hour)) {
		t.Fatalf("sharded pending wakes = %+v", shWakes)
	}

	// ShardedFleet archive -> SyncedFleet. The sharded fleet writes members
	// in id order, so the bytes match the synced archive exactly.
	var shardedArchive bytes.Buffer
	if _, err := sh.WriteTo(&shardedArchive); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shardedArchive.Bytes(), syncedArchive.Bytes()) {
		t.Fatal("sharded archive bytes differ from synced archive")
	}
	sy2, syWakes, err := RestoreSyncedFleet(opts, bytes.NewReader(shardedArchive.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, sy2)
	if len(syWakes) != 1 || syWakes[0].ID != 4 {
		t.Fatalf("synced pending wakes = %+v", syWakes)
	}

	// Both restored fleets run the same live resume op.
	at := t0.Add(4*24*time.Hour + 9*time.Hour).Add(-2 * time.Minute)
	shPws := sh.RunResumeOp(at)
	syPws := sy2.RunResumeOp(at)
	if len(shPws) != 4 || len(syPws) != 4 {
		t.Fatalf("resume ops after restore: sharded %d, synced %d", len(shPws), len(syPws))
	}

	// Single-database snapshots interoperate too.
	var one bytes.Buffer
	if err := sh.Snapshot(4, &one); err != nil {
		t.Fatal(err)
	}
	sy3, _ := NewSyncedFleet(opts)
	wakeAt, err := sy3.Restore(4, &one)
	if err != nil {
		t.Fatal(err)
	}
	if !wakeAt.Equal(t0.Add(11 * time.Hour)) {
		t.Fatalf("single-db restore wakeAt = %v", wakeAt)
	}
}

func TestSyncedFleetDeleteExplainPrediction(t *testing.T) {
	opts := equivOptions()
	sy, err := NewSyncedFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		if err := sy.Create(id, t0.Add(9*time.Hour)); err != nil {
			t.Fatal(err)
		}
		for d := 0; d < 2; d++ {
			base := t0.Add(time.Duration(d) * 24 * time.Hour)
			if d > 0 {
				if _, err := sy.Login(id, base.Add(9*time.Hour)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sy.Idle(id, base.Add(17*time.Hour)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if sy.PausedCount() != 2 {
		t.Fatalf("PausedCount = %d", sy.PausedCount())
	}

	// ExplainPrediction reports the qualifying window behind the pause.
	windows, start, _, ok, err := sy.ExplainPrediction(0, t0.Add(1*24*time.Hour+18*time.Hour))
	if err != nil || !ok {
		t.Fatalf("ExplainPrediction = ok=%v, %v", ok, err)
	}
	if len(windows) == 0 {
		t.Fatal("ExplainPrediction returned no windows")
	}
	if start.IsZero() {
		t.Fatal("ExplainPrediction returned zero start")
	}
	if _, _, _, _, err := sy.ExplainPrediction(99, t0); err == nil {
		t.Fatal("ExplainPrediction(99) succeeded")
	}

	// Deleting a paused database clears its control-plane metadata: the
	// pending proactive resume cannot fire.
	if err := sy.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := sy.Delete(0); err == nil {
		t.Fatal("double Delete succeeded")
	}
	if sy.Size() != 1 || sy.PausedCount() != 1 {
		t.Fatalf("after Delete: Size %d PausedCount %d", sy.Size(), sy.PausedCount())
	}
	pws := sy.RunResumeOp(t0.Add(2*24*time.Hour + 9*time.Hour).Add(-2 * time.Minute))
	if len(pws) != 1 || pws[0].ID != 1 {
		t.Fatalf("resume op after Delete = %+v", pws)
	}
}
