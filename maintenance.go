package prorp

import (
	"time"

	"prorp/internal/maintenance"
	"prorp/internal/predictor"
)

// MaintenanceStrategy says how a maintenance window was chosen.
type MaintenanceStrategy int

const (
	// MaintenanceRunNow: resources are allocated; run immediately.
	MaintenanceRunNow MaintenanceStrategy = MaintenanceStrategy(maintenance.RunNow)
	// MaintenanceDuringPredictedActivity: run alongside the predicted next
	// customer activity.
	MaintenanceDuringPredictedActivity MaintenanceStrategy = MaintenanceStrategy(maintenance.DuringPredictedActivity)
	// MaintenanceForcedResume: resources must be resumed just for the
	// operation.
	MaintenanceForcedResume MaintenanceStrategy = MaintenanceStrategy(maintenance.ForcedResume)
)

func (s MaintenanceStrategy) String() string { return maintenance.Strategy(s).String() }

// MaintenancePlan is a scheduled maintenance window for one database.
type MaintenancePlan struct {
	// Start is when the operation should begin.
	Start time.Time
	// Strategy records how the window was chosen.
	Strategy MaintenanceStrategy
	// AvoidsResume reports whether the plan piggybacks on customer-driven
	// resources instead of forcing a dedicated resume.
	AvoidsResume bool
}

// PlanMaintenance schedules a system maintenance operation (backup,
// software update, stats refresh) of the given duration, to finish no
// later than deadline. Implements the paper's fourth future-work
// direction (Section 11): maintenance runs when the database is predicted
// to be online, so the backend avoids resuming resources just for it.
func (d *Database) PlanMaintenance(now time.Time, duration time.Duration, deadline time.Time) (MaintenancePlan, error) {
	var next predictor.Activity
	if start, end, ok := d.NextPredictedActivity(); ok {
		next = predictor.Activity{Start: start.Unix(), End: end.Unix()}
	}
	plan, err := maintenance.Schedule(maintenance.Op{
		DB:          d.id,
		DurationSec: int64(duration / time.Second),
		DeadlineSec: deadline.Unix(),
	}, now.Unix(), d.ResourcesAvailable(), next)
	if err != nil {
		return MaintenancePlan{}, err
	}
	return MaintenancePlan{
		Start:        time.Unix(plan.Start, 0).UTC(),
		Strategy:     MaintenanceStrategy(plan.Strategy),
		AvoidsResume: plan.AvoidsResume,
	}, nil
}
