package prorp

// Benchmark harness: one testing.B benchmark per table/figure of the ProRP
// paper's evaluation (Section 9), each regenerating its experiment at a
// CI-friendly scale and reporting the headline KPI values as custom
// metrics. The full-scale runs (paper-shaped numbers, recorded in
// EXPERIMENTS.md) are produced by `go run ./cmd/prorp-bench`.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"prorp/internal/experiments"
	"prorp/internal/historystore"
	"prorp/internal/predictor"
)

func benchScale() experiments.Scale {
	s := experiments.Quick()
	s.Databases = 80
	return s
}

// BenchmarkTable1DefaultConfig exercises the production default knobs of
// Table 1 end to end on one region.
func BenchmarkTable1DefaultConfig(b *testing.B) {
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	for i := 0; i < b.N; i++ {
		rep, err := Simulate(SimulationConfig{
			Region: "EU1", Databases: 80, EvalDays: 2, Seed: 42, Options: &opts,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.QoSPercent, "qos%")
		b.ReportMetric(rep.IdlePercent, "idle%")
	}
}

// BenchmarkFig03IdleFragmentation regenerates the idle-interval CDFs.
func BenchmarkFig03IdleFragmentation(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.ShortCountFrac, "short-count%")
		b.ReportMetric(100*res.ShortDurationFrac, "short-duration%")
	}
}

// BenchmarkFig06Regions regenerates the cross-region policy comparison.
func BenchmarkFig06Regions(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(s, []string{"EU1", "US1"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Reactive.QoSPercent(), "reactive-qos%")
		b.ReportMetric(res.Rows[0].Proactive.QoSPercent(), "proactive-qos%")
	}
}

// BenchmarkFig07Days regenerates the per-day validation.
func BenchmarkFig07Days(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(s, "EU1", 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Proactive.QoSPercent(), "day1-proactive-qos%")
	}
}

// BenchmarkFig08WindowSweep regenerates the window-size sweep endpoints.
// Note: at the quick scale's 7-day history a single matching day already
// clears c = 0.1 (ceil(0.1*7) = 1), so window width barely moves QoS and
// the qos-gain metric can read 0; the full-scale sweep (28-day history,
// `prorp-bench -fig 8`) shows the paper's rising shape.
func BenchmarkFig08WindowSweep(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8Windows(s, "EU1", []int{1, 7})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[1].Report.QoSPercent()-res.Points[0].Report.QoSPercent(), "qos-gain-pts")
	}
}

// BenchmarkFig09ConfidenceSweep regenerates the threshold sweep endpoints.
func BenchmarkFig09ConfidenceSweep(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9Confidences(s, "EU1", []float64{0.1, 0.8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[0].Report.QoSPercent()-res.Points[1].Report.QoSPercent(), "qos-drop-pts")
	}
}

// BenchmarkFig10HistorySize regenerates the storage-overhead CDFs.
func BenchmarkFig10HistorySize(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(s, "EU1")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SizeKB.Mean, "history-kb-mean")
		b.ReportMetric(res.SizeKB.Max, "history-kb-max")
	}
}

// BenchmarkFig10PredictionLatency measures Algorithm 4 wall-clock latency
// on a paper-shaped history (Figure 10(c)): the paper's claim is that it
// stays sub-second even in the worst case.
func BenchmarkFig10PredictionLatency(b *testing.B) {
	st := historystore.New()
	base := int64(1000) * 86400
	// A worst-case history: >4K tuples over 28 days (Figure 10(a) tail).
	for i := int64(0); i < 4200; i++ {
		st.Insert(base-i*576, byte(i%2))
	}
	params := predictor.Default()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		predictor.Predict(st, params, base)
	}
}

// BenchmarkFig11ResumeWorkflows regenerates the allocation-workflow boxes.
func BenchmarkFig11ResumeWorkflows(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(s, "EU1", []int{1, 15})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].Proactive.Max, "max-prewarms-15min")
	}
}

// BenchmarkFig12PauseWorkflows regenerates the reclamation-workflow boxes.
func BenchmarkFig12PauseWorkflows(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(s, "EU1", []int{1, 15})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].Proactive.Max, "max-pauses-15min")
	}
}

// BenchmarkFleetResumeOp measures one control-plane iteration (Algorithm 5)
// over a fleet with many paused databases.
func BenchmarkFleetResumeOp(b *testing.B) {
	opts := DefaultOptions()
	opts.Mode = Reactive // machines not needed; measure the metadata scan
	fleet, err := NewFleet(opts)
	if err != nil {
		b.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0)
	for i := 0; i < 10_000; i++ {
		if _, err := fleet.Create(i, t0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleet.RunResumeOp(t0.Add(time.Duration(i) * time.Minute))
	}
}

// benchFleetMixed drives a mixed login/logout workload over 10k databases
// from a fixed number of goroutines, each owning a disjoint id range (as a
// sharded gateway tier would).
func benchFleetMixed(b *testing.B, f fleetDriver, goroutines int) {
	const dbs = 10_000
	base := time.Unix(1_700_000_000, 0)
	for id := 0; id < dbs; id++ {
		if err := f.Create(id, base); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		n := b.N / goroutines
		if g < b.N%goroutines {
			n++
		}
		lo, hi := g*dbs/goroutines, (g+1)*dbs/goroutines
		wg.Add(1)
		go func(lo, hi, n int) {
			defer wg.Done()
			at, id := base, lo
			for i := 0; i < n; i++ {
				at = at.Add(time.Minute)
				if i%2 == 0 {
					f.Idle(id, at)
				} else {
					f.Login(id, at)
					if id++; id == hi {
						id = lo
					}
				}
			}
		}(lo, hi, n)
	}
	wg.Wait()
}

// BenchmarkShardedVsSyncedFleet compares the single-mutex SyncedFleet with
// the lock-striped ShardedFleet under concurrent event load. The striped
// fleet's advantage needs real parallelism: on a multi-core host it scales
// with the goroutine count while the global mutex serializes; on a single
// hardware thread both degenerate to sequential execution (numbers in
// EXPERIMENTS.md).
func BenchmarkShardedVsSyncedFleet(b *testing.B) {
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	for _, goroutines := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("synced/goroutines=%d", goroutines), func(b *testing.B) {
			sf, err := NewSyncedFleet(opts)
			if err != nil {
				b.Fatal(err)
			}
			benchFleetMixed(b, sf, goroutines)
		})
		b.Run(fmt.Sprintf("sharded/goroutines=%d", goroutines), func(b *testing.B) {
			sh, err := NewShardedFleet(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer sh.Close()
			benchFleetMixed(b, sh, goroutines)
		})
	}
}
